// Package fleet is the federation layer over per-process telemetry: one
// service ingests metric snapshots from N gridftp/transfer processes
// (expfmt pushes to POST /v1/metrics, or periodic scrapes of configured
// /metrics URLs), keeps an instance registry keyed by instance name with
// identity anchored in process.start_time_seconds, and merges the
// per-instance series into fleet aggregates: counters summed across
// restart epochs, gauges summed over live instances, histograms merged
// bucket-wise so fleet p50/p90/p99 come from real pooled buckets. The
// aggregates feed a fleet-level tsdb recorder and alert engine
// (tsdb.DefaultFleetRules), and alert transitions trigger diagnostic
// bundle capture (bundle.go). This is the pane the paper's managed-fleet
// pitch implies and ROADMAP item 4's chaos harness asserts against.
package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/collector"
	"gridftp.dev/instant/internal/obs/expfmt"
	"gridftp.dev/instant/internal/obs/tsdb"
)

// maxInstances bounds the registry: a misbehaving pusher inventing
// instance names must not grow memory without limit.
const maxInstances = 1024

// Options configures a fleet Service. Zero fields take defaults.
type Options struct {
	// StaleAfter is how long an instance may go without a push/scrape
	// before it is marked stale (default 10s).
	StaleAfter time.Duration
	// Step is the Tick cadence of the background loop (default 1s).
	Step time.Duration
	// ScrapeInterval is how often configured scrape targets are pulled
	// (default 5s).
	ScrapeInterval time.Duration
	// GoodputCounters are the counter names whose summed rate is the
	// fleet's goodput (default gridftp.server.bytes_in/bytes_out).
	GoodputCounters []string
	// ActiveGauges are the gauge names whose fleet sum gates the goodput
	// floor: the deficit series is zero while the fleet is idle (default
	// transfer.active, gridftp.server.active_transfers).
	ActiveGauges []string
	// GoodputFloor is the goodput SLO in bytes/sec; the
	// fleet.goodput.deficit series carries max(0, floor−goodput) while
	// the fleet is active. Zero disables the floor.
	GoodputFloor float64
	// Rules are the alert rules for the fleet engine (default
	// tsdb.DefaultFleetRules).
	Rules []tsdb.Rule
	// Recorder sizes the fleet recorder's tiers.
	Recorder tsdb.Options
	// Bundle configures diagnostic bundle capture; a zero Dir disables it.
	Bundle BundleOptions
	// Collector, when set, contributes the whole fleet's stitched spans
	// to diagnostic bundles (instead of only the head process's tracer).
	Collector *collector.Collector
	// Obs is the federation head's own observability bundle; alerts and
	// events report into it. Nil degrades to no-ops.
	Obs *obs.Obs
	// Now overrides the clock for deterministic tests.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.StaleAfter <= 0 {
		o.StaleAfter = 10 * time.Second
	}
	if o.Step <= 0 {
		o.Step = time.Second
	}
	if o.ScrapeInterval <= 0 {
		o.ScrapeInterval = 5 * time.Second
	}
	if len(o.GoodputCounters) == 0 {
		o.GoodputCounters = []string{"gridftp.server.bytes_in", "gridftp.server.bytes_out"}
	}
	if len(o.ActiveGauges) == 0 {
		o.ActiveGauges = []string{"transfer.active", "gridftp.server.active_transfers"}
	}
	// Ingested names are canonicalized to their wire form (dots become
	// underscores on the Prometheus exposition); the lookups must live in
	// the same namespace.
	o.GoodputCounters = canonicalNames(o.GoodputCounters)
	o.ActiveGauges = canonicalNames(o.ActiveGauges)
	if o.Rules == nil {
		o.Rules = tsdb.DefaultFleetRules()
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// instanceState is one registered instance. Counters and histograms
// accumulate across process restarts: when a push arrives with a new
// process.start_time_seconds (or a counter that went backwards), the
// previous epoch's raw values fold into the bases, so fleet sums keep
// monotone counters and the tsdb rate derivation never sees a reset.
type instanceState struct {
	name      string
	addr      string
	firstSeen time.Time
	lastSeen  time.Time
	startTime int64 // process.start_time_seconds of the current epoch
	restarts  int
	pushes    int64
	stale     bool

	gauges      map[string]int64
	counterBase map[string]int64 // folded prior epochs
	counterRaw  map[string]int64 // current epoch, as reported
	histBase    map[string]obs.HistogramSnapshot
	histRaw     map[string]obs.HistogramSnapshot

	// Per-tenant accounting tables pushed via POST /v1/tenants, under the
	// same epoch discipline as counters: tenantRaw is the current
	// incarnation as reported, tenantBase the folded prior incarnations
	// (process restarts fold everything; a per-DN counter running
	// backwards — the pusher's sketch evicted and readmitted that DN —
	// folds just that DN). See tenants.go.
	tenantBase map[string]tenantCounters
	tenantRaw  map[string]tenantCounters

	goodputPrev float64 // effective goodput-counter sum at the last Tick
	goodputRate float64 // bytes/sec over the last Tick interval
}

// startTimeGauge is the canonical (wire-form) name of the process
// identity gauge anchoring restart detection.
const startTimeGauge = "process_start_time_seconds"

// identityGauges are per-process identity, not fleet quantities: they
// anchor restart detection and are excluded from gauge aggregation
// (summing start times across a fleet is meaningless). Keys are
// canonical wire-form names.
var identityGauges = map[string]bool{
	startTimeGauge:           true,
	"process_uptime_seconds": true,
}

// canonicalNames maps every name through expfmt.CanonicalName into a
// fresh slice.
func canonicalNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = expfmt.CanonicalName(n)
	}
	return out
}

// Instance is the registry view of one instance served by
// /fleet/instances.
type Instance struct {
	Name      string    `json:"name"`
	Addr      string    `json:"addr,omitempty"`
	Up        bool      `json:"up"`
	Stale     bool      `json:"stale"`
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
	StartTime int64     `json:"start_time_seconds,omitempty"`
	Restarts  int       `json:"restarts"`
	Pushes    int64     `json:"pushes"`
	// GoodputBps is the instance's goodput-counter rate over the last
	// aggregation tick.
	GoodputBps float64 `json:"goodput_bps"`
}

// Service is the federation head. Construct with New.
type Service struct {
	opts    Options
	o       *obs.Obs
	rec     *tsdb.Recorder
	engine  *tsdb.Engine
	bundler *Bundler

	mu        sync.Mutex
	instances map[string]*instanceState
	scrapes   map[string]string // instance name -> /metrics URL
	lastTick  time.Time
	agg       expfmt.Snapshot // latest fleet aggregate (fleet.-prefixed)
	// profiles holds each instance's newest continuous-profile summary
	// (profile.go); merged on demand, never ticked.
	profiles map[string]*instanceProfile

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// New builds a fleet service. The recorder and engine are created here;
// alert transitions log into opts.Obs and, when bundling is configured,
// trigger diagnostic capture.
func New(opts Options) *Service {
	o := opts.withDefaults()
	s := &Service{
		opts:      o,
		o:         o.Obs,
		rec:       tsdb.New(o.Recorder),
		instances: make(map[string]*instanceState),
		scrapes:   make(map[string]string),
	}
	s.engine = tsdb.NewEngine(s.rec, o.Obs, o.Rules)
	if o.Bundle.Dir != "" {
		s.bundler = newBundler(o.Bundle, s)
		s.engine.Tap(func(tr tsdb.Transition) {
			if tr.To == tsdb.StateFiring {
				s.bundler.trigger(tr)
			}
		})
	}
	return s
}

// Recorder exposes the fleet-level recorder (the /fleet/timeseries
// backend).
func (s *Service) Recorder() *tsdb.Recorder { return s.rec }

// Engine exposes the fleet alert engine (the /fleet/alerts backend).
func (s *Service) Engine() *tsdb.Engine { return s.engine }

// Bundler exposes the diagnostic bundler, nil when bundling is disabled.
func (s *Service) Bundler() *Bundler { return s.bundler }

// AddScrapeTarget registers a /metrics URL to pull on every scrape
// interval under the given instance name.
func (s *Service) AddScrapeTarget(instance, url string) {
	if instance == "" || url == "" {
		return
	}
	s.mu.Lock()
	s.scrapes[instance] = url
	s.mu.Unlock()
}

// Ingest folds one telemetry snapshot from the named instance into the
// registry. addr is advisory (the push's remote address or scrape URL).
// It is the shared core of the push handler and the scraper.
func (s *Service) Ingest(instance, addr string, snap expfmt.Snapshot, now time.Time) error {
	if instance == "" {
		return fmt.Errorf("fleet: ingest without instance name")
	}
	// Canonicalize into the wire-form namespace so in-process snapshots
	// (dotted names) and parsed pushes (underscored) land on the same
	// series. Copied, not mutated: the caller keeps its snapshot.
	metrics := make([]obs.Metric, len(snap.Metrics))
	for i, m := range snap.Metrics {
		m.Name = expfmt.CanonicalName(m.Name)
		metrics[i] = m
	}
	hists := make([]obs.HistogramSnapshot, len(snap.Histograms))
	for i, h := range snap.Histograms {
		h.Name = expfmt.CanonicalName(h.Name)
		hists[i] = h
	}

	var startTime int64
	for _, m := range metrics {
		if m.Name == startTimeGauge {
			startTime = m.Value
			break
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	inst, err := s.lockedInstance(instance, addr, now)
	if err != nil {
		return err
	}

	// Restart detection: a changed start time is authoritative; a counter
	// running backwards catches exporters without process identity.
	restarted := startTime != 0 && inst.startTime != 0 && startTime != inst.startTime
	if !restarted {
		for _, m := range metrics {
			if m.Kind == "counter" && m.Value < inst.counterRaw[m.Name] {
				restarted = true
				break
			}
		}
	}
	if restarted {
		for name, v := range inst.counterRaw {
			inst.counterBase[name] += v
		}
		for name, h := range inst.histRaw {
			inst.histBase[name] = MergeHistograms(name, inst.histBase[name], h)
		}
		inst.counterRaw = make(map[string]int64)
		inst.histRaw = make(map[string]obs.HistogramSnapshot)
		inst.foldTenants()
		inst.restarts++
		s.o.EventLog().Append("fleet.instance.restarted", "instance", instance,
			"restarts", fmt.Sprintf("%d", inst.restarts))
	}
	if startTime != 0 {
		inst.startTime = startTime
	}

	for _, m := range metrics {
		switch m.Kind {
		case "counter":
			inst.counterRaw[m.Name] = m.Value
		case "gauge":
			inst.gauges[m.Name] = m.Value
		}
	}
	for _, h := range hists {
		inst.histRaw[h.Name] = h
	}
	inst.lastSeen = now
	inst.stale = false
	inst.pushes++
	return nil
}

// lockedInstance returns the named instance record, registering it when
// new. The caller holds s.mu. Shared by the metric and tenant ingest
// paths so either kind of push can introduce an instance.
func (s *Service) lockedInstance(instance, addr string, now time.Time) (*instanceState, error) {
	inst, ok := s.instances[instance]
	if !ok {
		if len(s.instances) >= maxInstances {
			return nil, fmt.Errorf("fleet: instance registry full (%d), rejecting %q", maxInstances, instance)
		}
		inst = &instanceState{
			name: instance, firstSeen: now,
			gauges:      make(map[string]int64),
			counterBase: make(map[string]int64),
			counterRaw:  make(map[string]int64),
			histBase:    make(map[string]obs.HistogramSnapshot),
			histRaw:     make(map[string]obs.HistogramSnapshot),
			tenantBase:  make(map[string]tenantCounters),
			tenantRaw:   make(map[string]tenantCounters),
		}
		s.instances[instance] = inst
		s.o.EventLog().Append("fleet.instance.joined", "instance", instance, "addr", addr)
	}
	if addr != "" {
		inst.addr = addr
	}
	return inst, nil
}

// effectiveCounter is the instance's restart-proof counter value.
func (i *instanceState) effectiveCounter(name string) int64 {
	return i.counterBase[name] + i.counterRaw[name]
}

// effectiveHist is the instance's restart-proof histogram: prior epochs
// folded into the base, merged with the current epoch's raw snapshot.
func (i *instanceState) effectiveHist(name string) obs.HistogramSnapshot {
	base, hasBase := i.histBase[name]
	raw, hasRaw := i.histRaw[name]
	switch {
	case hasBase && hasRaw:
		return MergeHistograms(name, base, raw)
	case hasBase:
		return base
	default:
		return raw
	}
}

// Instances returns the registry sorted by name, evaluated at the last
// Tick's staleness horizon.
func (s *Service) Instances() []Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		out = append(out, Instance{
			Name: inst.name, Addr: inst.addr,
			Up: !inst.stale, Stale: inst.stale,
			FirstSeen: inst.firstSeen, LastSeen: inst.lastSeen,
			StartTime: inst.startTime, Restarts: inst.restarts,
			Pushes: inst.pushes, GoodputBps: inst.goodputRate,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Aggregate returns the latest fleet aggregate snapshot (fleet.-prefixed
// names), as computed by the last Tick.
func (s *Service) Aggregate() expfmt.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agg
}

// PerInstance renders every instance's current effective state as one
// snapshot with instance-labeled series — the ?instances=1 view of
// /fleet/metrics.
func (s *Service) PerInstance() expfmt.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	var snap expfmt.Snapshot
	for _, name := range s.sortedInstanceNames() {
		inst := s.instances[name]
		label := "instance=" + name
		for gname, v := range inst.gauges {
			snap.Metrics = append(snap.Metrics, obs.Metric{
				Name: obs.Name(gname, label), Kind: "gauge", Value: v,
			})
		}
		counters := make(map[string]bool, len(inst.counterBase)+len(inst.counterRaw))
		for n := range inst.counterBase {
			counters[n] = true
		}
		for n := range inst.counterRaw {
			counters[n] = true
		}
		for cname := range counters {
			snap.Metrics = append(snap.Metrics, obs.Metric{
				Name: obs.Name(cname, label), Kind: "counter", Value: inst.effectiveCounter(cname),
			})
		}
		for hname := range histNames(inst) {
			h := inst.effectiveHist(hname)
			h.Name = obs.Name(hname, label)
			snap.Histograms = append(snap.Histograms, h)
		}
	}
	sort.Slice(snap.Metrics, func(i, j int) bool { return snap.Metrics[i].Name < snap.Metrics[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

func (s *Service) sortedInstanceNames() []string {
	names := make([]string, 0, len(s.instances))
	for n := range s.instances {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func histNames(inst *instanceState) map[string]bool {
	out := make(map[string]bool, len(inst.histBase)+len(inst.histRaw))
	for n := range inst.histBase {
		out[n] = true
	}
	for n := range inst.histRaw {
		out[n] = true
	}
	return out
}

// ExemplarTraceIDs collects the distinct exemplar trace ids present in
// the latest fleet aggregate, newest first — the links a firing alert
// (and its diagnostic bundle) hands to the span collector.
func (s *Service) ExemplarTraceIDs() []string {
	s.mu.Lock()
	agg := s.agg
	s.mu.Unlock()
	type ex struct {
		id string
		t  time.Time
	}
	var all []ex
	seen := make(map[string]bool)
	for _, h := range agg.Histograms {
		for _, e := range h.Exemplars {
			if e.TraceID != "" && !seen[e.TraceID] {
				seen[e.TraceID] = true
				all = append(all, ex{e.TraceID, e.Time})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].t.After(all[j].t) })
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.id
	}
	return ids
}

// Tick runs one deterministic aggregation pass at now: staleness
// evaluation, fleet merge, recorder sampling of the merged aggregate,
// derived goodput/outlier series, then an alert evaluation. The
// background loop calls it every Step; tests call it directly with a
// synthetic clock.
func (s *Service) Tick(now time.Time) {
	s.mu.Lock()
	interval := now.Sub(s.lastTick)
	firstTick := s.lastTick.IsZero()
	s.lastTick = now

	// Staleness: quiet past the horizon. Stale counters stay in the fleet
	// sums (frozen, so they contribute zero rate); stale gauges drop out —
	// an instance that is gone holds no sessions.
	up, stale, restarts := 0, 0, 0
	for _, inst := range s.instances {
		inst.stale = now.Sub(inst.lastSeen) > s.opts.StaleAfter
		if inst.stale {
			stale++
		} else {
			up++
		}
		restarts += inst.restarts
	}

	// Merge: counters summed over every instance, gauges summed over live
	// ones (identity gauges excluded), histograms merged bucket-wise.
	counterSum := make(map[string]int64)
	gaugeSum := make(map[string]int64)
	histGroups := make(map[string][]obs.HistogramSnapshot)
	for _, inst := range s.instances {
		for name := range inst.counterBase {
			counterSum[name] += inst.counterBase[name]
		}
		for name, v := range inst.counterRaw {
			counterSum[name] += v
		}
		for name := range histNames(inst) {
			histGroups[name] = append(histGroups[name], inst.effectiveHist(name))
		}
		if !inst.stale {
			for name, v := range inst.gauges {
				if !identityGauges[name] {
					gaugeSum[name] += v
				}
			}
		}
	}

	var agg expfmt.Snapshot
	for name, v := range counterSum {
		agg.Metrics = append(agg.Metrics, obs.Metric{Name: "fleet." + name, Kind: "counter", Value: v})
	}
	for name, v := range gaugeSum {
		agg.Metrics = append(agg.Metrics, obs.Metric{Name: "fleet." + name, Kind: "gauge", Value: v})
	}
	for name, group := range histGroups {
		agg.Histograms = append(agg.Histograms, MergeHistograms("fleet."+name, group...))
	}
	sort.Slice(agg.Metrics, func(i, j int) bool { return agg.Metrics[i].Name < agg.Metrics[j].Name })
	sort.Slice(agg.Histograms, func(i, j int) bool { return agg.Histograms[i].Name < agg.Histograms[j].Name })
	s.agg = agg

	// Per-instance goodput rates (for the outlier series and /fleet/instances).
	var rates []float64
	var fleetGoodput float64
	for _, inst := range s.instances {
		var cur float64
		for _, c := range s.opts.GoodputCounters {
			cur += float64(inst.effectiveCounter(c))
		}
		if !firstTick && interval > 0 {
			inst.goodputRate = (cur - inst.goodputPrev) / interval.Seconds()
			if inst.goodputRate < 0 {
				inst.goodputRate = 0
			}
		}
		inst.goodputPrev = cur
		if !inst.stale {
			rates = append(rates, inst.goodputRate)
		}
		fleetGoodput += inst.goodputRate
	}
	var active int64
	for _, g := range s.opts.ActiveGauges {
		active += gaugeSum[g]
	}
	s.mu.Unlock()

	// Recorder + derived series + alerts run outside the registry lock:
	// engine taps (bundle capture) may call back into Service getters.
	s.rec.SampleSnapshot(agg.Metrics, agg.Histograms, now)
	s.rec.Observe("fleet.instances.total", now, float64(up+stale))
	s.rec.Observe("fleet.instances.up", now, float64(up))
	s.rec.Observe("fleet.instances.stale", now, float64(stale))
	s.rec.Observe("fleet.instances.restarts", now, float64(restarts))
	s.rec.Observe("fleet.goodput.bytes_per_sec", now, fleetGoodput)
	deficit := 0.0
	if s.opts.GoodputFloor > 0 && active > 0 && fleetGoodput < s.opts.GoodputFloor {
		deficit = s.opts.GoodputFloor - fleetGoodput
	}
	s.rec.Observe("fleet.goodput.deficit", now, deficit)
	s.rec.Observe("fleet.goodput.outlier_ratio", now, outlierRatio(rates))
	s.engine.Eval(now)
}

// outlierRatio measures how far the worst live instance's goodput falls
// below the fleet median: 1 − min/median, clamped to [0, 1]. Zero for
// fleets too small for a median to mean anything (<3 live instances) or
// with an idle median.
func outlierRatio(rates []float64) float64 {
	if len(rates) < 3 {
		return 0
	}
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if median <= 0 {
		return 0
	}
	r := 1 - sorted[0]/median
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// Start launches the background loop: Tick every Step, scrape targets
// every ScrapeInterval. The returned stop halts the loop and waits; it
// is idempotent. Start may be called at most once per Service.
func (s *Service) Start() (stop func()) {
	s.stopCh = make(chan struct{})
	s.doneCh = make(chan struct{})
	go func() {
		defer close(s.doneCh)
		tick := time.NewTicker(s.opts.Step)
		defer tick.Stop()
		lastScrape := time.Time{}
		for {
			select {
			case <-tick.C:
				now := s.opts.Now()
				if now.Sub(lastScrape) >= s.opts.ScrapeInterval {
					lastScrape = now
					s.scrapeAll(now)
				}
				s.Tick(now)
			case <-s.stopCh:
				return
			}
		}
	}()
	return func() {
		s.stopOnce.Do(func() { close(s.stopCh) })
		<-s.doneCh
	}
}

// String renders a one-line summary for logs.
func (s *Service) String() string {
	insts := s.Instances()
	up := 0
	for _, i := range insts {
		if i.Up {
			up++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d instances (%d up)", len(insts), up)
	return b.String()
}
