package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/collector"
	"gridftp.dev/instant/internal/obs/tsdb"
)

// This file is the alert-triggered diagnostics path: when a fleet alert
// transitions to firing, the evidence an operator needs — what was the
// process doing (CPU/heap profile), what was the fleet doing (span dump,
// event tail), and what led up to it (the fleet timeseries window) — is
// captured immediately, while the incident is still live, into a bounded
// on-disk ring served by GET /fleet/bundles. Waiting for a human to run
// pprof by hand loses exactly the minutes that matter.

// BundleOptions configures diagnostic bundle capture.
type BundleOptions struct {
	// Dir is the directory bundles are written under; empty disables
	// capture.
	Dir string
	// Limit bounds how many bundles are kept on disk; the oldest are
	// pruned (default 8).
	Limit int
	// ProfileDuration is how long the CPU profile runs (default 250ms —
	// long enough to catch a hot loop, short enough not to delay the
	// rest of the capture).
	ProfileDuration time.Duration
	// TimeseriesWindow is how much fleet history the bundle includes
	// (default 5m).
	TimeseriesWindow time.Duration
}

func (o BundleOptions) withDefaults() BundleOptions {
	if o.Limit <= 0 {
		o.Limit = 8
	}
	if o.ProfileDuration <= 0 {
		o.ProfileDuration = 250 * time.Millisecond
	}
	if o.TimeseriesWindow <= 0 {
		o.TimeseriesWindow = 5 * time.Minute
	}
	return o
}

// BundleMeta is the manifest written into every bundle as meta.json.
type BundleMeta struct {
	Name       string    `json:"name"`
	Rule       string    `json:"rule"`
	Series     string    `json:"series"`
	Severity   string    `json:"severity,omitempty"`
	Value      float64   `json:"value"`
	AlertAt    time.Time `json:"alert_at"`
	CapturedAt time.Time `json:"captured_at"`
	// ExemplarTraceIDs are the trace ids the fleet aggregate's histogram
	// exemplars carried at capture time — each resolvable against the
	// span collector for a representative slow trace.
	ExemplarTraceIDs []string   `json:"exemplar_trace_ids,omitempty"`
	Instances        []Instance `json:"instances,omitempty"`
	// Profile is the head's continuous-profile window at capture time —
	// the top-regressed frames inside it are the attribution for
	// alloc/CPU regression alerts. Absent when the head runs no
	// continuous profiler or it hasn't completed a window yet.
	Profile *obs.ProfileSummary `json:"profile,omitempty"`
	Files   []string            `json:"files,omitempty"`
}

// Bundler captures and serves diagnostic bundles.
type Bundler struct {
	opts BundleOptions
	svc  *Service

	mu       sync.Mutex
	seq      int
	inflight bool
	skipped  int
}

func newBundler(opts BundleOptions, svc *Service) *Bundler {
	return &Bundler{opts: opts.withDefaults(), svc: svc}
}

// trigger starts an asynchronous capture for the transition. At most one
// capture runs at a time; transitions arriving mid-capture are dropped
// (counted), not queued — a flapping rule must not turn the disk ring
// into a profile treadmill.
func (b *Bundler) trigger(tr tsdb.Transition) {
	b.mu.Lock()
	if b.inflight {
		b.skipped++
		b.mu.Unlock()
		return
	}
	b.inflight = true
	b.seq++
	seq := b.seq
	b.mu.Unlock()
	go func() {
		defer func() {
			b.mu.Lock()
			b.inflight = false
			b.mu.Unlock()
		}()
		if _, err := b.Capture(tr, seq); err != nil {
			b.svc.o.Logger().Warn("fleet: bundle capture failed", "rule", tr.Rule, "err", err.Error())
		}
	}()
}

// Capture synchronously writes one diagnostic bundle for the transition
// and returns its directory name. Exported for tests and for operators
// wiring manual capture; production capture goes through the engine tap.
func (b *Bundler) Capture(tr tsdb.Transition, seq int) (string, error) {
	now := b.svc.opts.Now()
	name := fmt.Sprintf("bundle-%s-%03d-%s",
		now.UTC().Format("20060102T150405Z"), seq, sanitizeBundleName(tr.Rule))
	dir := filepath.Join(b.opts.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	meta := BundleMeta{
		Name: name, Rule: tr.Rule, Series: tr.Series, Severity: tr.Severity,
		Value: tr.Value, AlertAt: tr.At, CapturedAt: now,
		ExemplarTraceIDs: b.svc.ExemplarTraceIDs(),
		Instances:        b.svc.Instances(),
	}
	if sum, ok := b.svc.o.Profiler().ProfileSummary(); ok {
		meta.Profile = &sum
	}

	writeJSONFile := func(file string, v any) {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return
		}
		if os.WriteFile(filepath.Join(dir, file), data, 0o644) == nil {
			meta.Files = append(meta.Files, file)
		}
	}

	// CPU profile: best-effort — another profiler (a concurrent capture,
	// an operator's pprof session) may already own the CPU profiler.
	if f, err := os.Create(filepath.Join(dir, "cpu.pprof")); err == nil {
		if err := pprof.StartCPUProfile(f); err == nil {
			time.Sleep(b.opts.ProfileDuration)
			pprof.StopCPUProfile()
			meta.Files = append(meta.Files, "cpu.pprof")
			f.Close()
		} else {
			f.Close()
			os.Remove(f.Name())
		}
	}
	if f, err := os.Create(filepath.Join(dir, "heap.pprof")); err == nil {
		if p := pprof.Lookup("heap"); p != nil && p.WriteTo(f, 0) == nil {
			meta.Files = append(meta.Files, "heap.pprof")
		}
		f.Close()
	}

	if meta.Profile != nil {
		// The window also lands as its own artifact: the fleet-wide merged
		// rankings at capture time give an alert's profile context even
		// when the regression originated on a pushed instance, not the head.
		writeJSONFile("profile.json", map[string]any{
			"window": meta.Profile,
			"fleet":  b.svc.Profile(0),
		})
	}
	writeJSONFile("spans.json", b.captureSpans())
	writeJSONFile("events.json", b.svc.o.EventLog().Last(200))
	writeJSONFile("timeseries.json", b.svc.rec.DumpSeries(
		[]string{"fleet."}, now.Add(-b.opts.TimeseriesWindow), 0))

	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), data, 0o644); err != nil {
		return "", err
	}
	b.svc.o.EventLog().Append("fleet.bundle.captured",
		"bundle", name, "rule", tr.Rule, "files", fmt.Sprintf("%d", len(meta.Files)+1))
	b.prune()
	return name, nil
}

// captureSpans dumps the fleet's stitched spans when a collector is
// wired, falling back to the head process's own tracer.
func (b *Bundler) captureSpans() map[string][]collector.Span {
	out := make(map[string][]collector.Span)
	if c := b.svc.opts.Collector; c != nil {
		for _, id := range c.TraceIDs() {
			if t := c.Stitch(id); t != nil {
				out[id] = t.Spans
			}
		}
		return out
	}
	for _, s := range collector.FromInfos("fleet-head", b.svc.o.Tracer().Spans()) {
		out[s.TraceID] = append(out[s.TraceID], s)
	}
	return out
}

// prune removes the oldest bundles beyond the configured limit. Bundle
// directory names sort chronologically (UTC timestamp prefix).
func (b *Bundler) prune() {
	names := b.bundleNames()
	for len(names) > b.opts.Limit {
		os.RemoveAll(filepath.Join(b.opts.Dir, names[0]))
		names = names[1:]
	}
}

func (b *Bundler) bundleNames() []string {
	entries, err := os.ReadDir(b.opts.Dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// Bundles lists the bundles on disk, oldest first, from their manifests.
// Bundles whose meta.json is missing or unreadable are skipped.
func (b *Bundler) Bundles() []BundleMeta {
	if b == nil {
		return nil
	}
	var out []BundleMeta
	for _, name := range b.bundleNames() {
		data, err := os.ReadFile(filepath.Join(b.opts.Dir, name, "meta.json"))
		if err != nil {
			continue
		}
		var m BundleMeta
		if json.Unmarshal(data, &m) != nil {
			continue
		}
		m.Name = name
		out = append(out, m)
	}
	return out
}

// Skipped reports how many firing transitions were dropped because a
// capture was already in flight.
func (b *Bundler) Skipped() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.skipped
}

// sanitizeBundleName keeps rule names filesystem- and URL-safe.
func sanitizeBundleName(s string) string {
	var out strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out.WriteRune(r)
		default:
			out.WriteByte('_')
		}
	}
	if out.Len() == 0 {
		return "alert"
	}
	return out.String()
}
