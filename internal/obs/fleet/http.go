package fleet

import (
	"encoding/json"
	"net/http"
	"path"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gridftp.dev/instant/internal/obs/expfmt"
	"gridftp.dev/instant/internal/obs/tenant"
)

// Handler returns the federation head's HTTP plane, mounted by the admin
// server under its own mux:
//
//	POST /v1/metrics            ingest one expfmt push (X-Fleet-Instance
//	                            header or ?instance= names the sender)
//	GET  /fleet/instances       the instance registry (JSON)
//	GET  /fleet/metrics         merged fleet aggregate as expfmt text with
//	                            exemplars; ?format=json for the snapshot
//	                            shape, ?instances=1 for per-instance
//	                            labeled series
//	GET  /fleet/timeseries      fleet recorder dump (?series=, ?since=,
//	                            ?step= as /debug/timeseries)
//	GET  /fleet/alerts          fleet alert engine state
//	GET  /fleet/bundles         diagnostic bundle manifests; append
//	                            /<bundle>/<file> for one artifact
//	POST /v1/profile            ingest one continuous-profile summary
//	                            (JSON obs.ProfileSummary, same instance
//	                            naming as /v1/metrics)
//	GET  /fleet/profile         merged fleet-wide hot-function rankings
//	                            with per-instance summaries (?n= top size)
//	POST /v1/tenants            ingest one tenant accounting table (JSON
//	                            []tenant.Stat, same instance naming as
//	                            /v1/metrics)
//	GET  /fleet/tenants         fleet-merged top tenants by bytes moved
//	                            (?k= table size, default 10)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/metrics", s.handlePush)
	mux.HandleFunc("/v1/profile", s.handleProfilePush)
	mux.HandleFunc("/v1/tenants", s.handleTenantsPush)
	mux.HandleFunc("/fleet/tenants", s.handleTenants)
	mux.HandleFunc("/fleet/profile", s.handleProfile)
	mux.HandleFunc("/fleet/instances", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Instances())
	})
	mux.HandleFunc("/fleet/metrics", s.handleMetrics)
	mux.HandleFunc("/fleet/timeseries", s.handleTimeseries)
	mux.HandleFunc("/fleet/alerts", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"alerts": s.engine.Alerts(),
			"active": s.engine.Active(),
		})
	})
	mux.HandleFunc("/fleet/bundles", s.handleBundles)
	mux.HandleFunc("/fleet/bundles/", s.handleBundles)
	return mux
}

func (s *Service) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	instance := r.Header.Get("X-Fleet-Instance")
	if instance == "" {
		instance = r.URL.Query().Get("instance")
	}
	if instance == "" {
		http.Error(w, "missing instance (X-Fleet-Instance header or ?instance=)", http.StatusBadRequest)
		return
	}
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	snap, err := expfmt.ParseTextSnapshot(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.Ingest(instance, r.RemoteAddr, snap, s.opts.Now()); err != nil {
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleTenantsPush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	instance := r.Header.Get("X-Fleet-Instance")
	if instance == "" {
		instance = r.URL.Query().Get("instance")
	}
	if instance == "" {
		http.Error(w, "missing instance (X-Fleet-Instance header or ?instance=)", http.StatusBadRequest)
		return
	}
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	var table []tenant.Stat
	if err := json.NewDecoder(body).Decode(&table); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.IngestTenants(instance, r.RemoteAddr, table, s.opts.Now()); err != nil {
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleTenants(w http.ResponseWriter, r *http.Request) {
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			http.Error(w, "bad k", http.StatusBadRequest)
			return
		}
		k = n
	}
	writeJSON(w, map[string]any{"tenants": s.Tenants(k)})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.Aggregate()
	if r.URL.Query().Get("instances") == "1" {
		snap = s.PerInstance()
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, snap)
		return
	}
	w.Header().Set("Content-Type", expfmt.TextContentType)
	expfmt.WriteSnapshot(w, snap)
}

func (s *Service) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var prefixes []string
	if sel := q.Get("series"); sel != "" {
		prefixes = strings.Split(sel, ",")
	}
	var since time.Time
	if raw := q.Get("since"); raw != "" {
		if d, err := time.ParseDuration(raw); err == nil && d > 0 {
			since = s.opts.Now().Add(-d)
		} else if t, err := time.Parse(time.RFC3339, raw); err == nil {
			since = t
		} else {
			http.Error(w, "bad since (duration or RFC3339)", http.StatusBadRequest)
			return
		}
	}
	var step time.Duration
	if raw := q.Get("step"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			http.Error(w, "bad step duration", http.StatusBadRequest)
			return
		}
		step = d
	}
	writeJSON(w, map[string]any{
		"series": s.rec.DumpSeries(prefixes, since, step),
	})
}

func (s *Service) handleBundles(w http.ResponseWriter, r *http.Request) {
	if s.bundler == nil {
		http.Error(w, "bundle capture disabled", http.StatusNotFound)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/fleet/bundles")
	rest = strings.Trim(rest, "/")
	if rest == "" {
		writeJSON(w, map[string]any{
			"bundles": s.bundler.Bundles(),
			"skipped": s.bundler.Skipped(),
		})
		return
	}
	// /fleet/bundles/<bundle>/<file>: serve one artifact. path.Clean plus
	// the two-segment shape keeps traversal out of the bundle root.
	clean := path.Clean(rest)
	parts := strings.Split(clean, "/")
	if len(parts) != 2 || strings.HasPrefix(parts[0], ".") || strings.HasPrefix(parts[1], ".") ||
		!strings.HasPrefix(parts[0], "bundle-") {
		http.Error(w, "want /fleet/bundles/<bundle>/<file>", http.StatusBadRequest)
		return
	}
	http.ServeFile(w, r, filepath.Join(s.bundler.opts.Dir, parts[0], parts[1]))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
