package fleet

import (
	"fmt"
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/expfmt"
	"gridftp.dev/instant/internal/obs/tenant"
)

func tstat(dn string, bytes int64, active int64) tenant.Stat {
	return tenant.Stat{DN: dn, Weight: bytes, Bytes: bytes, Active: active}
}

// TestTenantsMergeAcrossInstances: per-DN sums across pushers, heaviest
// first, with Share computed against fleet bytes and ranks assigned
// after the merge.
func TestTenantsMergeAcrossInstances(t *testing.T) {
	now := time.Unix(10000, 0)
	s := New(Options{Obs: obs.Nop(), Now: func() time.Time { return now }})

	if err := s.IngestTenants("i1", "", []tenant.Stat{tstat("A", 100, 2), tstat("B", 50, 1)}, now); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestTenants("i2", "", []tenant.Stat{tstat("A", 30, 1)}, now); err != nil {
		t.Fatal(err)
	}

	got := s.Tenants(0)
	if len(got) != 2 {
		t.Fatalf("Tenants = %+v, want A and B", got)
	}
	a, b := got[0], got[1]
	if a.DN != "A" || a.Rank != 1 || a.Bytes != 130 || a.Active != 3 {
		t.Fatalf("merged A = %+v, want bytes 130, active 3, rank 1", a)
	}
	if want := 130.0 / 180.0; a.Share != want {
		t.Fatalf("A share %v, want %v", a.Share, want)
	}
	if b.DN != "B" || b.Rank != 2 || b.Bytes != 50 {
		t.Fatalf("merged B = %+v", b)
	}
	if a.Hash != tenant.Hash("A") {
		t.Fatalf("merged hash %q does not match the daemon-side series hash", a.Hash)
	}
}

// TestTenantsPerDNFold: one DN's counters running backwards means the
// pusher's sketch evicted and readmitted that DN — fold only that DN's
// finished incarnation, leaving the other tenants' raw counters alone.
func TestTenantsPerDNFold(t *testing.T) {
	now := time.Unix(20000, 0)
	s := New(Options{Obs: obs.Nop(), Now: func() time.Time { return now }})

	s.IngestTenants("i1", "", []tenant.Stat{tstat("A", 100, 0), tstat("B", 50, 0)}, now)
	// A went backwards (evicted, readmitted at 20); B simply advanced.
	s.IngestTenants("i1", "", []tenant.Stat{tstat("A", 20, 0), tstat("B", 60, 0)}, now.Add(time.Second))

	byDN := map[string]tenant.Stat{}
	for _, st := range s.Tenants(0) {
		byDN[st.DN] = st
	}
	if byDN["A"].Bytes != 120 {
		t.Fatalf("A after per-DN fold = %d bytes, want 120 (100 folded + 20 new incarnation)", byDN["A"].Bytes)
	}
	if byDN["B"].Bytes != 60 {
		t.Fatalf("B = %d bytes, want 60 (raw replaced, NOT folded — B never reset)", byDN["B"].Bytes)
	}
}

// TestTenantsRestartFold: a process restart detected by the metric path
// (process.start_time_seconds changed) folds the whole tenant table, so
// the post-restart push — every DN starting over — keeps fleet totals
// monotone.
func TestTenantsRestartFold(t *testing.T) {
	now := time.Unix(30000, 0)
	s := New(Options{Obs: obs.Nop(), Now: func() time.Time { return now }})
	snap := func(start int64) expfmt.Snapshot {
		return expfmt.Snapshot{Metrics: []obs.Metric{
			{Name: "process.start_time_seconds", Kind: "gauge", Value: start},
		}}
	}

	s.Ingest("i1", "", snap(100), now)
	s.IngestTenants("i1", "", []tenant.Stat{tstat("A", 500, 1), tstat("B", 5, 0)}, now)

	// Restart: new start time arrives on the metric plane, then the new
	// incarnation's first tenant push (A back at 80, B gone entirely).
	now = now.Add(time.Second)
	s.Ingest("i1", "", snap(200), now)
	s.IngestTenants("i1", "", []tenant.Stat{tstat("A", 80, 1)}, now)

	byDN := map[string]tenant.Stat{}
	for _, st := range s.Tenants(0) {
		byDN[st.DN] = st
	}
	if byDN["A"].Bytes != 580 {
		t.Fatalf("A across restart = %d bytes, want 580 (500 folded + 80 new epoch)", byDN["A"].Bytes)
	}
	if byDN["B"].Bytes != 5 {
		t.Fatalf("B = %d bytes, want the folded 5 even though the new epoch never re-pushed it", byDN["B"].Bytes)
	}
	if byDN["A"].Active != 1 {
		t.Fatalf("A active = %d, want 1 (gauge from the live incarnation only)", byDN["A"].Active)
	}
}

// TestTenantsStaleInstance: a silent instance keeps its cumulative
// contribution frozen in the fleet sums, but its gauge-like Active
// count drops out — same discipline as the counter plane.
func TestTenantsStaleInstance(t *testing.T) {
	now := time.Unix(40000, 0)
	s := New(Options{Obs: obs.Nop(), Now: func() time.Time { return now }})

	s.IngestTenants("live", "", []tenant.Stat{tstat("A", 100, 2)}, now)
	s.IngestTenants("gone", "", []tenant.Stat{tstat("A", 40, 5)}, now)

	// Past StaleAfter with only "live" still pushing.
	now = now.Add(time.Minute)
	s.IngestTenants("live", "", []tenant.Stat{tstat("A", 100, 2)}, now)
	s.Tick(now)

	got := s.Tenants(0)
	if len(got) != 1 {
		t.Fatalf("Tenants = %+v", got)
	}
	if got[0].Bytes != 140 {
		t.Fatalf("A bytes = %d, want 140 (stale instance's cumulative sum stays frozen)", got[0].Bytes)
	}
	if got[0].Active != 2 {
		t.Fatalf("A active = %d, want 2 (stale instance's gauge dropped)", got[0].Active)
	}
}

// TestTenantsTruncationAndCap: k truncates after the merge-wide sort
// (ranks 1..k), and a pusher inventing DNs cannot grow the head past
// maxTenantsPerInstance.
func TestTenantsTruncationAndCap(t *testing.T) {
	now := time.Unix(50000, 0)
	s := New(Options{Obs: obs.Nop(), Now: func() time.Time { return now }})

	table := make([]tenant.Stat, 0, maxTenantsPerInstance+100)
	for i := 0; i < maxTenantsPerInstance+100; i++ {
		table = append(table, tstat(fmt.Sprintf("/CN=flood-%05d", i), int64(i+1), 0))
	}
	if err := s.IngestTenants("flood", "", table, now); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Tenants(maxTenantsPerInstance * 2)); got > maxTenantsPerInstance {
		t.Fatalf("head holds %d tenants for one instance, cap %d", got, maxTenantsPerInstance)
	}

	top := s.Tenants(3)
	if len(top) != 3 {
		t.Fatalf("Tenants(3) = %d entries", len(top))
	}
	for i, st := range top {
		if st.Rank != i+1 {
			t.Fatalf("rank at %d = %d", i, st.Rank)
		}
	}
	if top[0].Bytes <= top[1].Bytes || top[1].Bytes <= top[2].Bytes {
		t.Fatalf("top-3 not heaviest-first: %+v", top)
	}

	// Empty DNs and empty instance names are rejected/skipped.
	if err := s.IngestTenants("", "", table[:1], now); err == nil {
		t.Fatal("ingest without instance name must error")
	}
	s.IngestTenants("flood", "", []tenant.Stat{{DN: "", Bytes: 9}}, now)
	for _, st := range s.Tenants(1) {
		if st.DN == "" {
			t.Fatal("empty DN leaked into the merged table")
		}
	}
}
