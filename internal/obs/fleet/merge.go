package fleet

import (
	"math"
	"sort"

	"gridftp.dev/instant/internal/obs"
)

// This file is the histogram algebra of the federation layer: fleet
// quantiles must come from bucket-wise merged histograms, not from
// averaging per-instance quantile estimates (the mean of p99s is not the
// fleet p99). Instances may disagree on bucket boundaries (different
// builds, different configured buckets), so merging re-bins every input
// onto the union of all finite bounds; because the union contains each
// input's own bounds, re-binning moves no observation across a boundary
// it was counted under and the merge is exact — the merged histogram is
// identical to one that had observed the pooled stream directly (up to
// each input's own bucket resolution).

// MergeHistograms merges cumulative histogram snapshots bucket-wise into
// one snapshot named name. Union bounds, summed counts, summed sums, and
// recomputed p50/p90/p99. Bucket exemplars keep the most recent (by
// exemplar timestamp) traced observation among the inputs mapping to
// each union bucket. Empty inputs (no bounds) contribute nothing; if all
// inputs are empty the result has a lone +Inf bucket and zero counts.
// Non-monotone cumulative counts in an input (a torn or corrupt export)
// are re-monotonized, never trusted to go negative.
func MergeHistograms(name string, snaps ...obs.HistogramSnapshot) obs.HistogramSnapshot {
	// Union of finite bounds.
	boundSet := make(map[float64]bool)
	for _, s := range snaps {
		for _, b := range s.Bounds {
			if !math.IsInf(b, 1) && !math.IsNaN(b) {
				boundSet[b] = true
			}
		}
	}
	finite := make([]float64, 0, len(boundSet))
	for b := range boundSet {
		finite = append(finite, b)
	}
	sort.Float64s(finite)
	bounds := append(append([]float64(nil), finite...), math.Inf(1))

	deltas := make([]int64, len(bounds))
	exemplars := make([]obs.Exemplar, len(bounds))
	var sum float64
	for _, s := range snaps {
		if len(s.Bounds) == 0 {
			continue
		}
		sum += s.Sum
		var prev int64
		for i, b := range s.Bounds {
			if i >= len(s.Counts) {
				break
			}
			c := s.Counts[i]
			if c < prev {
				c = prev // re-monotonize a torn export
			}
			d := c - prev
			prev = c
			// Map this input bucket's upper bound onto the union index.
			// SearchFloat64s finds b exactly for finite bounds (the union
			// contains them); +Inf (and any bound above every finite one)
			// lands in the final +Inf bucket.
			j := len(bounds) - 1
			if !math.IsInf(b, 1) {
				j = sort.SearchFloat64s(finite, b)
				if j >= len(finite) || finite[j] != b {
					j = len(bounds) - 1 // NaN or unseen bound: overflow bucket
				}
			}
			deltas[j] += d
			if i < len(s.Exemplars) {
				e := s.Exemplars[i]
				if e.TraceID != "" && (exemplars[j].TraceID == "" || e.Time.After(exemplars[j].Time)) {
					exemplars[j] = e
				}
			}
		}
	}

	counts := make([]int64, len(bounds))
	var run int64
	for i, d := range deltas {
		run += d
		counts[i] = run
	}
	out := obs.HistogramSnapshot{
		Name: name, Bounds: bounds, Counts: counts,
		Count: run, Sum: sum, Exemplars: exemplars,
	}
	if run > 0 {
		out.P50 = obs.QuantileFromBuckets(bounds, counts, 0.50)
		out.P90 = obs.QuantileFromBuckets(bounds, counts, 0.90)
		out.P99 = obs.QuantileFromBuckets(bounds, counts, 0.99)
	}
	return out
}
