package fleet

import (
	"fmt"
	"sort"
	"time"

	"gridftp.dev/instant/internal/obs/tenant"
)

// This file federates the per-instance tenant accounting planes
// (internal/obs/tenant) into one fleet-wide "who is consuming the
// fleet" view. Instances push their full sketch tables (POST
// /v1/tenants, same instance naming as metric pushes); the head keeps
// them under the same epoch discipline as counters:
//
//   - a process restart (detected here as any per-DN byte counter
//     running backwards, and in Ingest via process.start_time_seconds)
//     folds the instance's raw table into its base, so fleet totals
//     stay monotone across restarts;
//   - sketch eviction/readmission on the pusher looks like a restart
//     for exactly one DN, so the fold is per-DN, not per-instance —
//     other tenants' running totals are untouched;
//   - staleness follows the counter rule: a stale instance's
//     cumulative contributions stay in the fleet sums (frozen), while
//     its gauge-like Active count drops out.
//
// The merged view is exact-per-push aggregation over sketch outputs,
// so the fleet numbers inherit the per-instance space-saving bounds:
// a tenant's fleet weight is overestimated by at most the sum of the
// instances' N/C bounds (each table entry carries its own Err).

// maxTenantsPerInstance bounds one instance's tenant table: a
// misbehaving pusher inventing DNs must not grow head memory without
// limit. At the default sketch capacity (512) a legitimate pusher
// never comes close.
const maxTenantsPerInstance = 4096

// tenantCounters is the summable core of one tenant's accounting on
// one instance — tenant.Stat minus the derived/identity fields.
type tenantCounters struct {
	weight        int64
	err           int64
	bytes         int64
	tasks         int64
	tasksFailed   int64
	commands      int64
	commandErrors int64
	queueWaitSecs float64
	active        int64 // gauge-like: latest raw value, never folded
	firstSeen     time.Time
	lastSeen      time.Time
}

func countersFrom(st tenant.Stat) tenantCounters {
	return tenantCounters{
		weight: st.Weight, err: st.Err, bytes: st.Bytes,
		tasks: st.Tasks, tasksFailed: st.TasksFailed,
		commands: st.Commands, commandErrors: st.CommandErrors,
		queueWaitSecs: st.QueueWaitSeconds, active: st.Active,
		firstSeen: st.FirstSeen, lastSeen: st.LastSeen,
	}
}

// fold accumulates a finished incarnation into the base record.
// Cumulative quantities add; Active is current-state only and stays
// with the raw side; the seen range widens.
func (c tenantCounters) fold(raw tenantCounters) tenantCounters {
	c.weight += raw.weight
	c.err += raw.err
	c.bytes += raw.bytes
	c.tasks += raw.tasks
	c.tasksFailed += raw.tasksFailed
	c.commands += raw.commands
	c.commandErrors += raw.commandErrors
	c.queueWaitSecs += raw.queueWaitSecs
	if c.firstSeen.IsZero() || (!raw.firstSeen.IsZero() && raw.firstSeen.Before(c.firstSeen)) {
		c.firstSeen = raw.firstSeen
	}
	if raw.lastSeen.After(c.lastSeen) {
		c.lastSeen = raw.lastSeen
	}
	return c
}

// foldTenants folds the whole raw table into base — the process-restart
// path, called from Ingest under s.mu when the instance's
// process.start_time_seconds changes.
func (i *instanceState) foldTenants() {
	for dn, raw := range i.tenantRaw {
		i.tenantBase[dn] = i.tenantBase[dn].fold(raw)
	}
	i.tenantRaw = make(map[string]tenantCounters)
}

// IngestTenants folds one tenant-table push from the named instance
// into the registry. The table is the pusher's full sketch table
// (tenant.Accountant.Table), not a truncated top-K, so the head merges
// exact per-DN aggregates.
func (s *Service) IngestTenants(instance, addr string, table []tenant.Stat, now time.Time) error {
	if instance == "" {
		return fmt.Errorf("fleet: tenant ingest without instance name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, err := s.lockedInstance(instance, addr, now)
	if err != nil {
		return err
	}
	for _, st := range table {
		if st.DN == "" {
			continue
		}
		cur := countersFrom(st)
		prev, seen := inst.tenantRaw[st.DN]
		if !seen && len(inst.tenantRaw) >= maxTenantsPerInstance {
			continue // bounded: drop table overflow, never grow past the cap
		}
		if seen && cur.bytes < prev.bytes {
			// This DN's counters went backwards: the pusher's sketch
			// evicted and readmitted it (or the process restarted and
			// Ingest hasn't seen the new epoch yet). Fold the finished
			// incarnation — only this DN's.
			inst.tenantBase[st.DN] = inst.tenantBase[st.DN].fold(prev)
		}
		inst.tenantRaw[st.DN] = cur
	}
	inst.lastSeen = now
	inst.stale = false
	return nil
}

// Tenants returns the fleet-merged tenant table, heaviest first, at
// most k entries (k <= 0 means 10): per-DN sums of every instance's
// restart-proof effective counters, with Active contributed only by
// live (non-stale) instances, Share computed against fleet bytes, and
// ranks assigned after the merge.
func (s *Service) Tenants(k int) []tenant.Stat {
	if k <= 0 {
		k = 10
	}
	s.mu.Lock()
	merged := make(map[string]tenantCounters)
	for _, inst := range s.instances {
		for dn, base := range inst.tenantBase {
			merged[dn] = merged[dn].fold(base)
		}
		for dn, raw := range inst.tenantRaw {
			m := merged[dn].fold(raw)
			if !inst.stale {
				m.active += raw.active
			}
			merged[dn] = m
		}
	}
	s.mu.Unlock()

	var totalBytes int64
	for _, c := range merged {
		totalBytes += c.bytes
	}
	out := make([]tenant.Stat, 0, len(merged))
	for dn, c := range merged {
		st := tenant.Stat{
			DN: dn, Hash: tenant.Hash(dn),
			Weight: c.weight, Err: c.err, Bytes: c.bytes,
			Tasks: c.tasks, TasksFailed: c.tasksFailed,
			Commands: c.commands, CommandErrors: c.commandErrors,
			QueueWaitSeconds: c.queueWaitSecs, Active: c.active,
			FirstSeen: c.firstSeen, LastSeen: c.lastSeen,
		}
		if events := c.tasks + c.commands; events > 0 {
			st.ErrorRate = float64(c.tasksFailed+c.commandErrors) / float64(events)
		}
		if totalBytes > 0 {
			st.Share = float64(c.bytes) / float64(totalBytes)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].DN < out[j].DN
	})
	if len(out) > k {
		out = out[:k]
	}
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}
