package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/expfmt"
	"gridftp.dev/instant/internal/obs/tenant"
)

// This file is the exporter side of federation: daemons push their own
// registry to a fleet head (Push/StartPusher), and the head pulls
// configured /metrics URLs (scrapeAll) — both land in Ingest, so a fleet
// can mix push-only processes behind NAT with scrapable long-lived ones.

var pushClient = &http.Client{Timeout: 10 * time.Second}

// Push exports reg once to a fleet head's POST /v1/metrics under the
// given instance name.
func Push(url, instance string, reg *obs.Registry) error {
	var body bytes.Buffer
	if err := expfmt.WriteText(&body, reg); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, &body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", expfmt.TextContentType)
	req.Header.Set("X-Fleet-Instance", instance)
	resp, err := pushClient.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: push to %s: %w", url, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("fleet: push to %s: %s", url, resp.Status)
	}
	return nil
}

// PushTenants exports acct's full sketch table once to a fleet head's
// POST /v1/tenants under the given instance name. The full table (not
// a truncated top-K) ships so the head can merge exact per-DN
// aggregates; a nil or empty accountant pushes nothing.
func PushTenants(url, instance string, acct *tenant.Accountant) error {
	table := acct.Table()
	if len(table) == 0 {
		return nil
	}
	body, err := json.Marshal(table)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Fleet-Instance", instance)
	resp, err := pushClient.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: tenant push to %s: %w", url, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("fleet: tenant push to %s: %s", url, resp.Status)
	}
	return nil
}

// StartPusher pushes o's registry to url every interval until the
// returned stop function is called. When o carries a continuous
// profiler, its newest summary rides along to the sibling /v1/profile
// endpoint on every tick; when acct is non-nil, its tenant table rides
// along to /v1/tenants the same way. Push failures are logged at debug
// (the head may simply not be up yet) and retried on the next tick; a
// final push runs on stop so short-lived processes still report their
// last state.
func StartPusher(url, instance string, o *obs.Obs, acct *tenant.Accountant, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	profileURL := profilePushURL(url)
	tenantURL := tenantPushURL(url)
	pushAll := func() {
		if err := Push(url, instance, o.Registry()); err != nil {
			o.Logger().Debug("fleet: push failed", "url", url, "err", err.Error())
		}
		if sum, ok := o.Profiler().ProfileSummary(); ok {
			if err := PushProfile(profileURL, instance, sum); err != nil {
				o.Logger().Debug("fleet: profile push failed", "url", profileURL, "err", err.Error())
			}
		}
		if acct != nil {
			if err := PushTenants(tenantURL, instance, acct); err != nil {
				o.Logger().Debug("fleet: tenant push failed", "url", tenantURL, "err", err.Error())
			}
		}
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				pushAll()
			case <-stopCh:
				pushAll()
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopCh) })
		<-doneCh
	}
}

// profilePushURL derives the /v1/profile ingest URL from the configured
// /v1/metrics push URL (unrecognized shapes just get /v1/profile
// appended to the host part untouched — the head 404s harmlessly).
func profilePushURL(metricsURL string) string {
	if strings.HasSuffix(metricsURL, "/v1/metrics") {
		return strings.TrimSuffix(metricsURL, "/v1/metrics") + "/v1/profile"
	}
	return metricsURL
}

// tenantPushURL derives the /v1/tenants ingest URL the same way.
func tenantPushURL(metricsURL string) string {
	if strings.HasSuffix(metricsURL, "/v1/metrics") {
		return strings.TrimSuffix(metricsURL, "/v1/metrics") + "/v1/tenants"
	}
	return metricsURL
}

// scrapeAll pulls every configured scrape target once, concurrently, and
// ingests what parses. A failed or unparsable scrape leaves the target's
// lastSeen untouched, which is exactly what drives it stale.
func (s *Service) scrapeAll(now time.Time) {
	s.mu.Lock()
	targets := make(map[string]string, len(s.scrapes))
	for name, url := range s.scrapes {
		targets[name] = url
	}
	s.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	var wg sync.WaitGroup
	for name, url := range targets {
		wg.Add(1)
		go func(name, url string) {
			defer wg.Done()
			resp, err := pushClient.Get(url)
			if err != nil {
				s.o.Logger().Debug("fleet: scrape failed", "instance", name, "err", err.Error())
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode >= 300 {
				s.o.Logger().Debug("fleet: scrape failed", "instance", name, "status", resp.Status)
				return
			}
			snap, err := expfmt.ParseTextSnapshot(io.LimitReader(resp.Body, 16<<20))
			if err != nil {
				s.o.Logger().Debug("fleet: scrape unparsable", "instance", name, "err", err.Error())
				return
			}
			s.Ingest(name, url, snap, now)
		}(name, url)
	}
	wg.Wait()
}
