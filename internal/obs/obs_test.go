package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from many goroutines — the
// same counters, gauges, and histograms, plus concurrent snapshot readers
// — and checks the totals. Run under -race this is the data-race proof
// for the hot per-block counting paths.
func TestRegistryConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 1000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Re-look up by name each time: the lookup path is part of
				// what must be race-free.
				r.Counter("test.ops").Inc()
				r.Counter("test.bytes").Add(64)
				r.Gauge("test.active").Add(1)
				r.Gauge("test.active").Add(-1)
				r.Gauge("test.high").Max(int64(w*rounds + i))
				r.Histogram("test.dur", DefaultDurationBuckets).Observe(0.01)
			}
		}(w)
	}
	// Concurrent readers while the writers run.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Snapshot()
				var b bytes.Buffer
				r.WriteMetrics(&b)
			}
		}()
	}
	wg.Wait()

	const total = workers * rounds
	if got := r.Counter("test.ops").Value(); got != total {
		t.Errorf("counter test.ops = %d, want %d", got, total)
	}
	if got := r.Counter("test.bytes").Value(); got != total*64 {
		t.Errorf("counter test.bytes = %d, want %d", got, total*64)
	}
	if got := r.Gauge("test.active").Value(); got != 0 {
		t.Errorf("gauge test.active = %d, want 0", got)
	}
	if got := r.Gauge("test.high").Value(); got != total-1 {
		t.Errorf("gauge test.high = %d, want %d", got, total-1)
	}
	h := r.Histogram("test.dur", DefaultDurationBuckets)
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	if want := float64(total) * 0.01; h.Sum() < want*0.999 || h.Sum() > want*1.001 {
		t.Errorf("histogram sum = %g, want ~%g", h.Sum(), want)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	c.Add(0)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || len(counts) != 4 {
		t.Fatalf("bucket shape %v %v", bounds, counts)
	}
	// Cumulative: <=1: 1, <=10: 3, <=100: 4, +Inf: 5.
	want := []int64{1, 3, 4, 5}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d (<=%g) = %d, want %d", i, bounds[i], counts[i], w)
		}
	}
}

// TestSnapshotRoundTrip verifies the text export format survives a
// write/parse cycle — the contract between the -metrics flags and
// benchreport -metrics-snapshot.
func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("gridftp.server.bytes_in").Add(123456)
	r.Counter(Name("usage.bytes_total", "siteA")).Add(99)
	r.Gauge("gridftp.server.sessions_active").Set(3)
	h := r.Histogram("transfer.task_seconds", DefaultDurationBuckets)
	h.Observe(0.25)
	h.Observe(1.5)

	var b bytes.Buffer
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnapshot(strings.NewReader("# comment\n\n" + b.String()))
	if err != nil {
		t.Fatalf("ParseSnapshot: %v\n%s", err, b.String())
	}
	want := r.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("parsed %d metrics, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].Kind != want[i].Kind || got[i].Value != want[i].Value {
			t.Errorf("metric %d: got %+v, want %+v", i, got[i], want[i])
		}
		if d := got[i].Sum - want[i].Sum; d < -1e-9 || d > 1e-9 {
			t.Errorf("metric %d sum: got %g, want %g", i, got[i].Sum, want[i].Sum)
		}
	}
}

func TestParseSnapshotRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"counter only_two",
		"counter test.x notanumber",
		"sparkline test.x 5",
		"histogram test.h 5 notafloat",
	} {
		if _, err := ParseSnapshot(strings.NewReader(line)); err == nil {
			t.Errorf("ParseSnapshot(%q) should fail", line)
		}
	}
}

// TestTracerConcurrent builds span trees from many goroutines while other
// goroutines snapshot and render them — the -race proof for the span
// store.
func TestTracerConcurrent(t *testing.T) {
	const (
		workers  = 8
		perChild = 10
	)
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			root := tr.StartSpan(fmt.Sprintf("task-%d", w))
			root.SetAttr("worker", w)
			for i := 0; i < perChild; i++ {
				c := root.Child("phase")
				c.SetAttr("i", i)
				if i%3 == 0 {
					c.SetError(fmt.Errorf("boom %d", i))
				}
				c.End()
			}
			root.End()
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Spans()
				tr.TreeString()
				tr.Roots()
			}
		}()
	}
	wg.Wait()

	spans := tr.Spans()
	if want := workers * (perChild + 1); len(spans) != want {
		t.Fatalf("retained %d spans, want %d", len(spans), want)
	}
	roots := tr.Roots()
	if len(roots) != workers {
		t.Fatalf("%d roots, want %d", len(roots), workers)
	}
	for _, root := range roots {
		if !root.Ended {
			t.Errorf("root %s not ended", root.Name)
		}
		kids := tr.Children(root.ID)
		if len(kids) != perChild {
			t.Errorf("root %s has %d children, want %d", root.Name, len(kids), perChild)
		}
		errs := 0
		for _, k := range kids {
			if k.Err != "" {
				errs++
			}
		}
		if want := (perChild + 2) / 3; errs != want {
			t.Errorf("root %s has %d errored children, want %d", root.Name, errs, want)
		}
	}
	tree := tr.TreeString()
	if !strings.Contains(tree, "task-0") || !strings.Contains(tree, "  phase") {
		t.Errorf("TreeString missing expected structure:\n%s", tree)
	}
}

func TestTracerBoundedBuffer(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < maxSpans+100; i++ {
		tr.StartSpan("s").End()
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Fatalf("retained %d spans, want %d", got, maxSpans)
	}
}

func TestLoggerLevelsAndFields(t *testing.T) {
	var b bytes.Buffer
	l := NewLogger(&b, LevelInfo)
	l.Debug("hidden")
	l.Info("plain")
	child := l.With("session", 7, "dn", "/O=Grid/CN=alice")
	child.Warn("spaced msg", "bytes", 1024)
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("debug line leaked through info level:\n%s", out)
	}
	if !strings.Contains(out, "level=info msg=plain") {
		t.Errorf("missing info line:\n%s", out)
	}
	if !strings.Contains(out, `msg="spaced msg" session=7 dn="/O=Grid/CN=alice" bytes=1024`) {
		t.Errorf("missing structured warn line:\n%s", out)
	}
}

// TestNilSafety exercises every accessor off a nil bundle, logger, span,
// and metric — the "call sites never guard" contract.
func TestNilSafety(t *testing.T) {
	var o *Obs
	o.Logger().Info("into the void", "k", "v")
	o.Logger().With("a", 1).Debug("still fine")
	o.Registry().Counter("nil.test").Inc()
	o.Tracer().StartSpan("nil-span").Child("kid").End()

	var span *Span
	span.SetAttr("k", "v")
	span.SetError(fmt.Errorf("x"))
	span.End()
	if span.Child("kid") != nil {
		t.Error("nil span Child should be nil")
	}
	if span.Duration() != 0 {
		t.Error("nil span Duration should be 0")
	}

	var c *Counter
	c.Inc()
	var g *Gauge
	g.Set(1)
	var h *Histogram
	h.Observe(1)

	if o.DebugSnapshot() == "" {
		t.Error("nil Obs DebugSnapshot should still render headers")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warning": LevelWarn, "error": LevelError,
	} {
		got, ok := ParseLevel(in)
		if !ok || got != want {
			t.Errorf("ParseLevel(%q) = %v,%v", in, got, ok)
		}
	}
	if _, ok := ParseLevel("loud"); ok {
		t.Error("ParseLevel should reject unknown names")
	}
}
