package obs_test

import (
	"strings"
	"testing"

	"gridftp.dev/instant/internal/obs"
)

func TestInjectExtractRoundTrip(t *testing.T) {
	tr := obs.NewTracer()
	span := tr.StartSpan("op")
	tp := obs.Inject(span.Context())
	if !strings.HasPrefix(tp, "00-") {
		t.Fatalf("Inject = %q, want 00- prefix", tp)
	}
	sc, err := obs.Extract(tp)
	if err != nil {
		t.Fatalf("Extract(%q): %v", tp, err)
	}
	if sc != span.Context() {
		t.Fatalf("round trip mismatch: got %+v want %+v", sc, span.Context())
	}
}

func TestExtractRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"00-abc-def-01",
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e473X-00f067aa0ba902b7-01", // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", // non-hex flags
	}
	for _, tp := range cases {
		if _, err := obs.Extract(tp); err == nil {
			t.Errorf("Extract(%q): want error, got nil", tp)
		}
	}
}

func TestInjectInvalidContextIsEmpty(t *testing.T) {
	if got := obs.Inject(obs.SpanContext{}); got != "" {
		t.Fatalf("Inject(zero) = %q, want empty", got)
	}
	var nilSpan *obs.Span
	if got := obs.Inject(nilSpan.Context()); got != "" {
		t.Fatalf("Inject(nil span context) = %q, want empty", got)
	}
}

func TestChildInheritsTraceID(t *testing.T) {
	tr := obs.NewTracer()
	root := tr.StartSpan("task")
	child := root.Child("activate")
	grand := child.Child("logon")
	if root.TraceID.IsZero() {
		t.Fatal("root span has zero trace id")
	}
	if child.TraceID != root.TraceID || grand.TraceID != root.TraceID {
		t.Fatal("children did not inherit the root trace id")
	}
	if child.ParentSpanID != root.SpanID {
		t.Fatal("child ParentSpanID != root SpanID")
	}
	if root.SpanID == child.SpanID || child.SpanID == grand.SpanID {
		t.Fatal("span ids are not unique")
	}

	other := tr.StartSpan("task2")
	if other.TraceID == root.TraceID {
		t.Fatal("independent roots share a trace id")
	}
}

func TestStartSpanContextJoinsRemoteTrace(t *testing.T) {
	// Simulate two processes: caller starts a trace, injects it over the
	// wire, and the callee's tracer rebinds under it.
	caller := obs.NewTracer()
	task := caller.StartSpan("task")
	tp := obs.Inject(task.Context())

	callee := obs.NewTracer()
	sc, err := obs.Extract(tp)
	if err != nil {
		t.Fatal(err)
	}
	remote := callee.StartSpanContext("gridftp.stor", sc)
	if remote.TraceID != task.TraceID {
		t.Fatal("remote span did not join the caller's trace")
	}
	if remote.ParentSpanID != task.SpanID {
		t.Fatal("remote span is not parented to the caller's span")
	}
	if remote.Parent != 0 {
		t.Fatal("remote span should be a local root (Parent == 0)")
	}
	remote.End()

	infos := callee.Spans()
	if len(infos) != 1 {
		t.Fatalf("callee has %d spans, want 1", len(infos))
	}
	if infos[0].TraceID != task.TraceID.String() || infos[0].ParentSpanID != task.SpanID.String() {
		t.Fatalf("SpanInfo ids wrong: %+v", infos[0])
	}
	if roots := callee.Roots(); len(roots) != 1 {
		t.Fatalf("remote span missing from local Roots(): %d", len(roots))
	}
}

func TestStartSpanContextInvalidRootsLocally(t *testing.T) {
	tr := obs.NewTracer()
	s := tr.StartSpanContext("op", obs.SpanContext{})
	if s.TraceID.IsZero() || s.SpanID.IsZero() {
		t.Fatal("invalid context should degrade to a fresh local root with ids")
	}
	if !s.ParentSpanID.IsZero() {
		t.Fatal("degraded root should have no parent span id")
	}
	info := tr.Spans()[0]
	if info.ParentSpanID != "" {
		t.Fatalf("root SpanInfo.ParentSpanID = %q, want empty", info.ParentSpanID)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *obs.Tracer
	s := tr.StartSpanContext("op", obs.SpanContext{})
	if s != nil {
		t.Fatal("nil tracer should return nil span")
	}
	s.Context() // must not panic
	s.Child("x").End()
}
