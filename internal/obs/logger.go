package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level's canonical lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel parses a level name (case-insensitive). ok is false for
// unknown names, including the empty string.
func ParseLevel(s string) (Level, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, true
	case "info":
		return LevelInfo, true
	case "warn", "warning":
		return LevelWarn, true
	case "error":
		return LevelError, true
	}
	return 0, false
}

// Logger is a leveled key=value logger. With() derives child loggers that
// carry permanent context fields (session id, remote DN, task id), so
// every line of one session is greppable by a stable key. Loggers sharing
// an output serialize writes through a common mutex.
type Logger struct {
	out    *lockedWriter
	level  Level
	fields []field // permanent context, rendered after the message
}

type field struct {
	key string
	val string
}

type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger creates a logger writing lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{out: &lockedWriter{w: w}, level: level}
}

// With returns a child logger whose lines all carry the given key=value
// pairs. Args are consumed pairwise; a trailing odd argument is dropped.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := &Logger{out: l.out, level: l.level}
	child.fields = append(append([]field(nil), l.fields...), toFields(kv)...)
	return child
}

// Enabled reports whether lines at the given level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

func toFields(kv []any) []field {
	out := make([]field, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, field{key: fmt.Sprint(kv[i]), val: fmt.Sprint(kv[i+1])})
	}
	return out
}

// quoteIfNeeded quotes values containing spaces, quotes, or '=' so lines
// stay machine-splittable on spaces.
func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \"=\t\n") || s == "" {
		return fmt.Sprintf("%q", s)
	}
	return s
}

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString(time.Now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteIfNeeded(msg))
	for _, f := range l.fields {
		b.WriteByte(' ')
		b.WriteString(f.key)
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(f.val))
	}
	for _, f := range toFields(kv) {
		b.WriteByte(' ')
		b.WriteString(f.key)
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(f.val))
	}
	b.WriteByte('\n')
	l.out.mu.Lock()
	io.WriteString(l.out.w, b.String())
	l.out.mu.Unlock()
}

// Debug logs at debug level; kv are key=value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// Fields returns the logger's permanent context as sorted "k=v" strings
// (diagnostic helper for tests).
func (l *Logger) Fields() []string {
	if l == nil {
		return nil
	}
	out := make([]string, len(l.fields))
	for i, f := range l.fields {
		out[i] = f.key + "=" + f.val
	}
	sort.Strings(out)
	return out
}
