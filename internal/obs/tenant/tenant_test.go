package tenant

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/tsdb"
)

// TestChurnBoundedAndAccurate drives 10k distinct synthetic tenants
// through a 256-slot sketch from concurrent writers — the fleet-scale
// churn scenario — and checks the space-saving contract: memory stays
// at the slot capacity, every heavy hitter (true weight > N/C) is
// present, and every reported weight brackets the truth within the
// per-slot error bound.
func TestChurnBoundedAndAccurate(t *testing.T) {
	const (
		capacity = 256
		tenants  = 10000
		heavy    = 20
		writers  = 8
	)
	a := New(Options{Capacity: capacity, TopK: 10})

	// Ground truth: heavy tenants move 200 KB each (in chunks, so the
	// sketch sees many touches), light tenants at most a few bytes.
	exact := make(map[string]int64, tenants)
	dns := make([]string, tenants)
	for i := range dns {
		dn := fmt.Sprintf("/O=Grid/OU=churn/CN=user-%05d", i)
		dns[i] = dn
		if i < heavy {
			exact[dn] = 200_000
		} else {
			exact[dn] = int64(1 + i%7)
		}
	}

	// Each writer owns a disjoint shard of DNs so the per-DN ground
	// truth needs no synchronization; the sketch itself is shared.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < tenants; i += writers {
				dn := dns[i]
				total := exact[dn]
				for moved := int64(0); moved < total; {
					chunk := total - moved
					if chunk > 50_000 {
						chunk = 50_000
					}
					a.BytesMoved(dn, chunk)
					moved += chunk
				}
			}
		}(w)
	}
	wg.Wait()

	sum := a.Stats()
	if sum.Tracked > capacity {
		t.Fatalf("tracked %d tenants, capacity %d — memory not bounded", sum.Tracked, capacity)
	}
	var n int64
	for _, w := range exact {
		n += w
	}
	if sum.TotalWeight != n {
		t.Fatalf("total weight %d, want %d (every byte observed exactly once)", sum.TotalWeight, n)
	}
	bound := n / capacity
	if sum.MaxError != bound {
		t.Fatalf("MaxError %d, want N/C = %d", sum.MaxError, bound)
	}

	table := a.Table()
	byDN := make(map[string]Stat, len(table))
	for _, st := range table {
		byDN[st.DN] = st
	}
	// Heavy-hitter guarantee: every tenant above the error bound is in
	// the table, and in the top-K (heavy count < K would also hold, but
	// the K=10 view must surface only heavy tenants here since every
	// heavy weight dwarfs bound+light).
	for i := 0; i < heavy; i++ {
		st, ok := byDN[dns[i]]
		if !ok {
			t.Fatalf("heavy hitter %s (weight %d > bound %d) missing from table", dns[i], exact[dns[i]], bound)
		}
		if st.Weight < exact[dns[i]] {
			t.Fatalf("%s weight %d underestimates exact %d — space-saving never underestimates", dns[i], st.Weight, exact[dns[i]])
		}
	}
	top := a.TopK(heavy)
	if len(top) != heavy {
		t.Fatalf("TopK(%d) returned %d entries", heavy, len(top))
	}
	for _, st := range top {
		if exact[st.DN] != 200_000 {
			t.Fatalf("top-%d contains light tenant %s (weight %d, err %d)", heavy, st.DN, st.Weight, st.Err)
		}
	}
	// Error contract on everything reported, heavy or light.
	for _, st := range table {
		if st.Err > bound {
			t.Fatalf("%s err %d exceeds N/C bound %d", st.DN, st.Err, bound)
		}
		truth := exact[st.DN]
		if st.Weight < truth || st.Weight-st.Err > truth {
			t.Fatalf("%s weight %d (err %d) does not bracket exact %d", st.DN, st.Weight, st.Err, truth)
		}
	}
}

// TestOperationalAggregatesExact checks the exact-since-admission side
// counters and the derived rates of the /tenants view.
func TestOperationalAggregatesExact(t *testing.T) {
	a := New(Options{Capacity: 8, TopK: 4})
	a.TaskSubmitted("A")
	a.TaskDone("A", false)
	a.Command("A", true)
	a.Command("A", false)
	a.QueueWait("A", 1500*time.Millisecond)
	a.TransferStarted("A")
	a.BytesMoved("A", 300)
	a.BytesMoved("B", 700)

	top := a.TopK(0)
	if len(top) != 2 || top[0].DN != "B" || top[1].DN != "A" {
		t.Fatalf("TopK order = %+v, want B then A", top)
	}
	st := top[1]
	if st.Tasks != 1 || st.TasksFailed != 1 || st.Commands != 2 || st.CommandErrors != 1 {
		t.Fatalf("A counters = %+v", st)
	}
	if st.QueueWaitSeconds != 1.5 || st.Active != 1 || st.Bytes != 300 {
		t.Fatalf("A aggregates = %+v", st)
	}
	// 2 failures over 3 task+command events.
	if want := 2.0 / 3.0; st.ErrorRate != want {
		t.Fatalf("A error rate %v, want %v", st.ErrorRate, want)
	}
	if want := 0.3; st.Share != want {
		t.Fatalf("A share %v, want %v", st.Share, want)
	}
	a.TransferEnded("A")
	a.TransferEnded("A") // over-decrement clamps at zero
	if got := a.TopK(0)[1].Active; got != 0 {
		t.Fatalf("active after paired+extra end = %d, want 0", got)
	}
}

// TestPublishBoundsSeriesAndRetiresDropouts runs churn through a real
// recorder: the series budget must stay at K tenant timelines (4 series
// each) plus the 5 summary series, with drop-outs tombstoned and — once
// the retire horizon elapses — reclaimed. This is the "series bounded
// by K + retention horizon" acceptance check.
func TestPublishBoundsSeriesAndRetiresDropouts(t *testing.T) {
	const topK = 5
	rec := tsdb.New(tsdb.Options{RetireHorizon: time.Millisecond})
	o := obs.Nop()
	o.Series = rec
	a := New(Options{Capacity: 64, TopK: topK, Obs: o})

	// 40 rounds; each round a fresh cohort of tenants out-weighs the
	// previous top-K, forcing full turnover of the published set.
	now := time.Now()
	weight := int64(1000)
	for round := 0; round < 40; round++ {
		for i := 0; i < topK; i++ {
			a.BytesMoved(fmt.Sprintf("/CN=round%02d-user%d", round, i), weight)
		}
		weight += 1000 // later cohorts strictly heavier
		now = now.Add(time.Second)
		a.Publish(now)
	}

	const budget = topK*4 + 5
	live, tombstoned, retired := rec.LifecycleStats()
	if live-tombstoned > budget {
		t.Fatalf("%d non-tombstoned series after churn, budget %d", live-tombstoned, budget)
	}
	if retired == 0 {
		t.Fatal("no series were retired across 40 rounds of top-K turnover")
	}
	// The horizon (1ms against wall-clock tombstones) has elapsed:
	// sweeping far in the future reclaims every tombstone and the
	// recorder is back to exactly the budget.
	rec.Sweep(time.Now().Add(time.Hour))
	live, tombstoned, _ = rec.LifecycleStats()
	if tombstoned != 0 || live > budget {
		t.Fatalf("after sweep: live %d (budget %d), tombstoned %d", live, budget, tombstoned)
	}

	// The current top-K all have live series; hashes are stable.
	for _, st := range a.TopK(0) {
		if _, ok := rec.Latest(SeriesPrefix + st.Hash + ".bytes_total"); !ok {
			t.Fatalf("current top tenant %s has no live bytes_total series", st.DN)
		}
	}
}

// TestPublishTopShareSingleTenantGuard: a box with one active tenant
// must publish top_share 0 (share 1.0 would permanently trip the
// capture-alert), while two active tenants publish the real ratio.
func TestPublishTopShareSingleTenantGuard(t *testing.T) {
	rec := tsdb.New(tsdb.Options{})
	o := obs.Nop()
	o.Series = rec
	a := New(Options{Capacity: 8, TopK: 4, Obs: o})

	now := time.Now()
	a.BytesMoved("A", 100)
	a.Publish(now)
	a.BytesMoved("A", 100)
	a.Publish(now.Add(time.Second))
	if p, ok := rec.Latest(SeriesPrefix + "top_share"); !ok || p.V != 0 {
		t.Fatalf("single-tenant top_share = %+v, want 0", p)
	}

	// B's first published tick only establishes its rate baseline; the
	// ratio appears once both tenants have an interval delta.
	a.BytesMoved("A", 300)
	a.BytesMoved("B", 100)
	a.Publish(now.Add(2 * time.Second))
	a.BytesMoved("A", 300)
	a.BytesMoved("B", 100)
	a.Publish(now.Add(3 * time.Second))
	p, ok := rec.Latest(SeriesPrefix + "top_share")
	if !ok || p.V != 0.75 {
		t.Fatalf("two-tenant top_share = %+v, want 0.75", p)
	}
}

// TestNilAccountantSafe: the facility contract — every method on a nil
// receiver is a no-op.
func TestNilAccountantSafe(t *testing.T) {
	var a *Accountant
	a.BytesMoved("A", 1)
	a.TaskSubmitted("A")
	a.TaskDone("A", false)
	a.Command("A", true)
	a.QueueWait("A", time.Second)
	a.TransferStarted("A")
	a.TransferEnded("A")
	a.Publish(time.Now())
	defer a.Start()()
	if got := a.TopK(5); got != nil {
		t.Fatalf("nil TopK = %v", got)
	}
	if got := a.Table(); got != nil {
		t.Fatalf("nil Table = %v", got)
	}
	if got := a.Stats(); got != (Summary{}) {
		t.Fatalf("nil Stats = %+v", got)
	}
}

// TestHashStableAndPadded: the series identifier must be deterministic
// and always 8 hex digits (series names are parsed by dashboards).
func TestHashStableAndPadded(t *testing.T) {
	if Hash("/CN=x") != Hash("/CN=x") {
		t.Fatal("hash not deterministic")
	}
	for _, dn := range []string{"", "/CN=a", "/O=Grid/OU=dept/CN=someone-with-a-long-name"} {
		h := Hash(dn)
		if len(h) != 8 {
			t.Fatalf("Hash(%q) = %q, want 8 hex digits", dn, h)
		}
		for _, c := range h {
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				t.Fatalf("Hash(%q) = %q contains non-hex %q", dn, h, c)
			}
		}
	}
}
