// Package tenant is the per-tenant (credential DN) accounting plane: a
// fixed-memory answer to "who is consuming the fleet?" across an
// unbounded tenant population. It is the observability prerequisite for
// per-tenant admission control and QoS — isolation claims are
// unprovable without per-tenant SLIs — and the hosted-service framing
// of the paper makes the DN, not the task, the billing unit.
//
// The core is a space-saving heavy-hitter sketch (Metwally et al.,
// "Efficient computation of frequent and top-k elements in data
// streams"): Capacity counter slots keyed by DN, weighted by bytes
// moved (plus one unit per control event so pure-control tenants still
// register). A DN already in the table is counted exactly; a new DN
// arriving at a full table evicts the minimum-weight slot and inherits
// its weight as overestimate error. That yields the classic guarantees,
// with N = total observed weight and C = Capacity:
//
//   - per-slot overestimate ≤ N/C (each slot also tracks its own exact
//     bound in Err, set at eviction time);
//   - any tenant whose true weight exceeds N/C is guaranteed present;
//   - memory is O(C) regardless of how many distinct DNs pass through.
//
// Alongside the ranking weight each slot carries exact-since-admission
// operational aggregates: tasks submitted/failed, commands and command
// errors, queue-wait time, bytes, and a live active-transfer gauge.
//
// The plane feeds the tsdb through a bounded series budget: only the
// top-K tenants get "tenant.<hash>.*" series (hash, not rank, so a
// tenant's timeline is stable while it stays in the set), and a tenant
// dropping out of the top-K has its series retired through
// obs.RetireSeries — series count stays ≤ K live plus whatever the
// recorder's retire horizon is still draining, no matter how many
// tenants churn through. Fleet-level summary series (tenant.top_share,
// tenant.error_burn, tenant.tracked, ...) drive the DefaultRules
// tenant alerts.
//
// Every method is nil-receiver safe so call sites stay branch-free,
// matching the obs facility contract.
package tenant

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// SeriesPrefix is the namespace of every series this plane publishes.
const SeriesPrefix = "tenant."

// Options configures an Accountant. Zero fields take the defaults.
type Options struct {
	// Capacity is the sketch's slot count C: the number of distinct DNs
	// tracked simultaneously and the denominator of the N/C error bound
	// (default 512).
	Capacity int
	// TopK is how many tenants get tsdb series and appear in the default
	// /tenants view (default 10).
	TopK int
	// Obs receives the published series and events; nil discards.
	Obs *obs.Obs
	// PublishInterval is the cadence of the background publisher started
	// by Start (default 1s, matching the tsdb raw tier).
	PublishInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 512
	}
	if o.TopK <= 0 {
		o.TopK = 10
	}
	if o.TopK > o.Capacity {
		o.TopK = o.Capacity
	}
	if o.PublishInterval <= 0 {
		o.PublishInterval = time.Second
	}
	return o
}

// slot is one tracked tenant: the space-saving counter pair plus exact
// operational aggregates accumulated since this DN was (last) admitted.
type slot struct {
	dn     string
	weight int64 // space-saving count: bytes + control events, incl. inherited overestimate
	err    int64 // overestimate bound inherited from the slot evicted at admission

	bytes       int64
	tasks       int64
	tasksFailed int64
	commands    int64
	cmdErrors   int64
	queueWait   time.Duration
	active      int64
	firstSeen   time.Time
	lastSeen    time.Time

	heapIdx int // position in the min-weight heap
}

// pubState tracks one published tenant between Publish ticks so the
// publisher can emit interval rates and retire drop-outs.
type pubState struct {
	lastBytes int64
}

// Accountant is the concurrency-safe accounting plane. The zero value
// is not usable; construct with New. A nil *Accountant discards all
// observations and reports empty views.
type Accountant struct {
	opts Options

	mu         sync.Mutex
	slots      map[string]*slot
	heap       []*slot // min-heap on weight: heap[0] is the eviction victim
	totalW     int64   // N: exact total observed weight (never decays)
	totalBytes int64
	admissions int64 // distinct-DN admissions (population proxy)
	evictions  int64

	// Publisher state (guarded by mu): hashes with live series, and the
	// last published clock for interval rates.
	published   map[string]*pubState
	lastPublish time.Time

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// New returns an empty accountant with the given geometry.
func New(opts Options) *Accountant {
	o := opts.withDefaults()
	return &Accountant{
		opts:      o,
		slots:     make(map[string]*slot, o.Capacity),
		heap:      make([]*slot, 0, o.Capacity),
		published: make(map[string]*pubState),
	}
}

// Options reports the accountant's effective (defaulted) geometry.
func (a *Accountant) Options() Options {
	if a == nil {
		return Options{}.withDefaults()
	}
	return a.opts
}

// touch is the space-saving update: charge weightDelta to dn, admitting
// it (and evicting the minimum slot when full) if unseen. Returns the
// slot with a.mu held by the caller.
func (a *Accountant) touch(dn string, weightDelta int64, now time.Time) *slot {
	s, ok := a.slots[dn]
	if !ok {
		if len(a.slots) < a.opts.Capacity {
			s = &slot{dn: dn, firstSeen: now}
			a.slots[dn] = s
			a.heapPush(s)
		} else {
			// Evict the minimum-weight tenant; the newcomer inherits its
			// weight as overestimate error (the classic space-saving
			// replacement, which is what keeps heavy hitters from being
			// displaced by a churn of one-shot tenants).
			victim := a.heap[0]
			delete(a.slots, victim.dn)
			a.evictions++
			inherited := victim.weight
			*victim = slot{dn: dn, weight: inherited, err: inherited, firstSeen: now, heapIdx: 0}
			a.slots[dn] = victim
			s = victim
		}
		a.admissions++
	}
	s.weight += weightDelta
	s.lastSeen = now
	a.totalW += weightDelta
	a.heapFix(s)
	return s
}

// heap helpers: a hand-rolled min-heap on slot.weight keeping heapIdx
// coherent so touch can re-sift an arbitrary slot in O(log C).

func (a *Accountant) heapPush(s *slot) {
	s.heapIdx = len(a.heap)
	a.heap = append(a.heap, s)
	a.siftUp(s.heapIdx)
}

func (a *Accountant) heapFix(s *slot) {
	// Weights only grow, so a touched slot can only move toward the
	// leaves of a min-heap.
	a.siftDown(s.heapIdx)
}

func (a *Accountant) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if a.heap[parent].weight <= a.heap[i].weight {
			return
		}
		a.heapSwap(parent, i)
		i = parent
	}
}

func (a *Accountant) siftDown(i int) {
	n := len(a.heap)
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < n && a.heap[l].weight < a.heap[min].weight {
			min = l
		}
		if r < n && a.heap[r].weight < a.heap[min].weight {
			min = r
		}
		if min == i {
			return
		}
		a.heapSwap(min, i)
		i = min
	}
}

func (a *Accountant) heapSwap(i, j int) {
	a.heap[i], a.heap[j] = a.heap[j], a.heap[i]
	a.heap[i].heapIdx, a.heap[j].heapIdx = i, j
}

// BytesMoved attributes n transferred bytes to dn — the primary
// consumption signal and the sketch's ranking weight.
func (a *Accountant) BytesMoved(dn string, n int64) {
	if a == nil || dn == "" || n <= 0 {
		return
	}
	now := time.Now()
	a.mu.Lock()
	s := a.touch(dn, n, now)
	s.bytes += n
	a.totalBytes += n
	a.mu.Unlock()
}

// TaskSubmitted attributes one hosted-transfer submission to dn.
func (a *Accountant) TaskSubmitted(dn string) {
	if a == nil || dn == "" {
		return
	}
	now := time.Now()
	a.mu.Lock()
	s := a.touch(dn, 1, now)
	s.tasks++
	a.mu.Unlock()
}

// TaskDone attributes a task's terminal outcome to dn.
func (a *Accountant) TaskDone(dn string, ok bool) {
	if a == nil || dn == "" {
		return
	}
	now := time.Now()
	a.mu.Lock()
	s := a.touch(dn, 1, now)
	if !ok {
		s.tasksFailed++
	}
	a.mu.Unlock()
}

// Command attributes one control-channel command to dn; failed marks a
// 4xx/5xx reply.
func (a *Accountant) Command(dn string, failed bool) {
	if a == nil || dn == "" {
		return
	}
	now := time.Now()
	a.mu.Lock()
	s := a.touch(dn, 1, now)
	s.commands++
	if failed {
		s.cmdErrors++
	}
	a.mu.Unlock()
}

// QueueWait attributes time dn's transfer spent waiting for an
// admission slot.
func (a *Accountant) QueueWait(dn string, d time.Duration) {
	if a == nil || dn == "" || d < 0 {
		return
	}
	now := time.Now()
	a.mu.Lock()
	s := a.touch(dn, 1, now)
	s.queueWait += d
	a.mu.Unlock()
}

// TransferStarted / TransferEnded maintain dn's live active-transfer
// gauge around the data-moving span.
func (a *Accountant) TransferStarted(dn string) { a.transferDelta(dn, +1) }

// TransferEnded is the paired decrement for TransferStarted.
func (a *Accountant) TransferEnded(dn string) { a.transferDelta(dn, -1) }

func (a *Accountant) transferDelta(dn string, d int64) {
	if a == nil || dn == "" {
		return
	}
	now := time.Now()
	a.mu.Lock()
	s := a.touch(dn, 1, now)
	if s.active += d; s.active < 0 {
		s.active = 0 // an eviction between start and end loses the +1
	}
	a.mu.Unlock()
}

// Stat is one tenant's accounting snapshot — the /tenants wire shape.
type Stat struct {
	Rank int    `json:"rank"`
	DN   string `json:"dn"`
	// Hash is the stable 8-hex-digit FNV-1a identifier used in series
	// names (series must not embed raw DNs: they carry /CN= slashes and
	// unbounded length).
	Hash string `json:"hash"`
	// Weight is the space-saving count (bytes + control events,
	// including inherited overestimate); Err is this slot's overestimate
	// bound — true weight lies in [Weight-Err, Weight].
	Weight int64 `json:"weight"`
	Err    int64 `json:"err"`

	Bytes            int64     `json:"bytes"`
	Tasks            int64     `json:"tasks"`
	TasksFailed      int64     `json:"tasks_failed"`
	Commands         int64     `json:"commands"`
	CommandErrors    int64     `json:"command_errors"`
	QueueWaitSeconds float64   `json:"queue_wait_seconds"`
	Active           int64     `json:"active"`
	ErrorRate        float64   `json:"error_rate"`
	Share            float64   `json:"share"`
	FirstSeen        time.Time `json:"first_seen"`
	LastSeen         time.Time `json:"last_seen"`
}

// Hash returns the stable series-name identifier for a DN.
func Hash(dn string) string {
	h := fnv.New32a()
	h.Write([]byte(dn))
	const hex = "0123456789abcdef"
	v := h.Sum32()
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = hex[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

func (s *slot) stat(totalBytes int64) Stat {
	st := Stat{
		DN: s.dn, Hash: Hash(s.dn),
		Weight: s.weight, Err: s.err,
		Bytes: s.bytes, Tasks: s.tasks, TasksFailed: s.tasksFailed,
		Commands: s.commands, CommandErrors: s.cmdErrors,
		QueueWaitSeconds: s.queueWait.Seconds(),
		Active:           s.active,
		FirstSeen:        s.firstSeen, LastSeen: s.lastSeen,
	}
	if events := s.tasks + s.commands; events > 0 {
		st.ErrorRate = float64(s.tasksFailed+s.cmdErrors) / float64(events)
	}
	if totalBytes > 0 {
		st.Share = float64(s.bytes) / float64(totalBytes)
	}
	return st
}

// TopK returns the k heaviest tenants (k ≤ 0 takes Options.TopK),
// ranked by sketch weight, with Share computed against total observed
// bytes. The result is a consistent snapshot.
func (a *Accountant) TopK(k int) []Stat {
	if a == nil {
		return nil
	}
	if k <= 0 {
		k = a.opts.TopK
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.topKLocked(k)
}

func (a *Accountant) topKLocked(k int) []Stat {
	out := make([]Stat, 0, len(a.slots))
	for _, s := range a.slots {
		out = append(out, s.stat(a.totalBytes))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].DN < out[j].DN
	})
	if len(out) > k {
		out = out[:k]
	}
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// Table returns the full tracked table (up to Capacity entries), ranked
// — the fleet-push payload, so the federation head can merge exact
// per-DN aggregates instead of already-truncated top-Ks.
func (a *Accountant) Table() []Stat {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.topKLocked(len(a.slots))
}

// Summary is the plane-level accounting snapshot.
type Summary struct {
	// Tracked is the number of DNs currently holding slots; Capacity the
	// sketch size C.
	Tracked  int `json:"tracked"`
	Capacity int `json:"capacity"`
	TopK     int `json:"top_k"`
	// Admissions counts distinct-DN slot grants (a population proxy:
	// every DN ever seen was admitted at least once); Evictions how many
	// of those were displaced.
	Admissions int64 `json:"admissions"`
	Evictions  int64 `json:"evictions"`
	// TotalWeight is N in the N/C error bound; MaxError is the bound
	// itself, the worst-case overestimate of any reported weight.
	TotalWeight int64 `json:"total_weight"`
	MaxError    int64 `json:"max_error"`
	TotalBytes  int64 `json:"total_bytes"`
}

// Stats reports the plane-level summary.
func (a *Accountant) Stats() Summary {
	if a == nil {
		return Summary{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Summary{
		Tracked: len(a.slots), Capacity: a.opts.Capacity, TopK: a.opts.TopK,
		Admissions: a.admissions, Evictions: a.evictions,
		TotalWeight: a.totalW, TotalBytes: a.totalBytes,
	}
	if a.opts.Capacity > 0 {
		s.MaxError = a.totalW / int64(a.opts.Capacity)
	}
	return s
}

// Publish emits one tick of series into the configured Obs: per-top-K
// tenant timelines under "tenant.<hash>." plus the plane summary
// series, and retires the series of tenants that dropped out of the
// top-K since the previous tick. Driven by Start in production, called
// directly with synthetic order in tests.
func (a *Accountant) Publish(now time.Time) {
	if a == nil {
		return
	}
	a.mu.Lock()
	top := a.topKLocked(a.opts.TopK)
	interval := now.Sub(a.lastPublish)
	first := a.lastPublish.IsZero()
	a.lastPublish = now

	type emit struct {
		name string
		v    float64
	}
	var emits []emit
	var retire []string

	current := make(map[string]bool, len(top))
	var maxRate, totalRate, errBurn float64
	ratedTenants := 0
	for _, st := range top {
		current[st.Hash] = true
		prefix := SeriesPrefix + st.Hash + "."
		ps, seen := a.published[st.Hash]
		if !seen {
			ps = &pubState{lastBytes: st.Bytes}
			a.published[st.Hash] = ps
		}
		var rate float64
		if seen && !first && interval > 0 {
			rate = float64(st.Bytes-ps.lastBytes) / interval.Seconds()
			if rate < 0 {
				rate = 0 // slot was recycled to another DN and back
			}
		}
		ps.lastBytes = st.Bytes
		if rate > 0 {
			ratedTenants++
			totalRate += rate
			if rate > maxRate {
				maxRate = rate
			}
		}
		if st.ErrorRate > errBurn {
			errBurn = st.ErrorRate
		}
		emits = append(emits,
			emit{prefix + "bytes_per_sec", rate},
			emit{prefix + "bytes_total", float64(st.Bytes)},
			emit{prefix + "active", float64(st.Active)},
			emit{prefix + "error_rate", st.ErrorRate},
		)
	}
	for hash := range a.published {
		if !current[hash] {
			delete(a.published, hash)
			retire = append(retire, SeriesPrefix+hash+".")
		}
	}
	// top_share is only meaningful as a capture signal when more than
	// one tenant moved bytes this interval: a single-tenant box always
	// has share 1.0 and must not warn.
	topShare := 0.0
	if ratedTenants >= 2 && totalRate > 0 {
		topShare = maxRate / totalRate
	}
	emits = append(emits,
		emit{SeriesPrefix + "top_share", topShare},
		emit{SeriesPrefix + "error_burn", errBurn},
		emit{SeriesPrefix + "tracked", float64(len(a.slots))},
		emit{SeriesPrefix + "admissions", float64(a.admissions)},
		emit{SeriesPrefix + "evictions", float64(a.evictions)},
	)
	o := a.opts.Obs
	a.mu.Unlock()

	sink := o.TimeSeries()
	for _, e := range emits {
		sink.Observe(e.name, now, e.v)
	}
	for _, prefix := range retire {
		o.RetireSeries(prefix)
	}
}

// Start launches the background publisher at PublishInterval. The
// returned stop function halts it and waits; it is idempotent. Start
// may be called at most once per Accountant.
func (a *Accountant) Start() (stop func()) {
	if a == nil {
		return func() {}
	}
	a.stopCh = make(chan struct{})
	a.doneCh = make(chan struct{})
	go func() {
		defer close(a.doneCh)
		tick := time.NewTicker(a.opts.PublishInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				a.Publish(time.Now())
			case <-a.stopCh:
				return
			}
		}
	}()
	return func() {
		a.stopOnce.Do(func() { close(a.stopCh) })
		<-a.doneCh
	}
}
