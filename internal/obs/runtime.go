package obs

import (
	"math"
	"runtime"
	"sync"
	"time"
)

// This file adds the Go runtime's own health to every default registry:
// GC pause latency, live heap size and object count, and cumulative
// process CPU time. The continuous profiler's obs.profile.* series
// (internal/obs/profile) attribute allocation and CPU to functions;
// these series are the runtime-level context to correlate them against
// — an alloc-rate regression with flat go.heap.alloc_bytes is churn, one
// with a climbing heap is a leak.

// DefaultGCPauseBuckets suit Go stop-the-world pauses, which run tens of
// microseconds to low milliseconds (values observed in seconds).
var DefaultGCPauseBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 100e-3,
}

// runtimeRefreshInterval throttles runtime.ReadMemStats (a brief
// stop-the-world) so frequent snapshots — the 1s tsdb sampler plus
// scrapes — share one read per interval.
const runtimeRefreshInterval = 500 * time.Millisecond

// runtimeSampler lazily refreshes runtime state when any of the
// registered runtime metrics is read at snapshot time.
type runtimeSampler struct {
	mu        sync.Mutex
	last      time.Time
	stats     runtime.MemStats
	baselined bool
	lastNumGC uint32

	pauses *Histogram
	cpu    *Counter
	// cpuLast/cpuCarry turn the float CPU clock into a monotone
	// whole-seconds counter: the fractional remainder carries between
	// refreshes so the cumulative value tracks real CPU time with <1s
	// error (the registry's counters are int64).
	cpuLast  float64
	cpuCarry float64
}

// registerRuntimeMetrics wires the runtime series into r:
//
//	go.gc.pause_seconds       histogram of stop-the-world pause durations
//	go.heap.alloc_bytes       gauge, live heap bytes (MemStats.HeapAlloc)
//	go.heap.objects           gauge, live heap objects
//	go.goroutines             gauge, current goroutine count
//	process.cpu_seconds_total counter, cumulative user+system CPU seconds
//	                          (whole-second resolution, remainder carried)
//
// Pauses and CPU count from registry creation, matching every other
// metric's "since this process's registry existed" semantics.
func registerRuntimeMetrics(r *Registry) {
	s := &runtimeSampler{
		pauses:  r.Histogram("go.gc.pause_seconds", DefaultGCPauseBuckets),
		cpu:     r.Counter("process.cpu_seconds_total"),
		cpuLast: processCPUSeconds(),
	}
	r.GaugeFunc("go.heap.alloc_bytes", func() int64 {
		ms := s.snapshot()
		return int64(ms.HeapAlloc)
	})
	r.GaugeFunc("go.heap.objects", func() int64 {
		ms := s.snapshot()
		return int64(ms.HeapObjects)
	})
	r.GaugeFunc("go.goroutines", func() int64 {
		s.snapshot() // keep pause/CPU series fresh even if heap gauges are filtered out
		return int64(runtime.NumGoroutine())
	})
}

// snapshot returns the current MemStats, re-reading the runtime at most
// once per refresh interval and folding new GC pauses and CPU time into
// their metrics as a side effect.
func (s *runtimeSampler) snapshot() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	if !s.last.IsZero() && now.Sub(s.last) < runtimeRefreshInterval {
		return s.stats
	}
	s.last = now
	runtime.ReadMemStats(&s.stats)
	s.observePauses()
	s.updateCPU()
	return s.stats
}

// observePauses feeds every GC pause since the previous refresh into the
// histogram. The runtime keeps the most recent 256 pauses; a refresh gap
// longer than 256 GCs loses the overflow (the histogram is a sample,
// not an audit log).
func (s *runtimeSampler) observePauses() {
	n := s.stats.NumGC
	if !s.baselined {
		s.baselined = true
		s.lastNumGC = n
		return
	}
	if n == s.lastNumGC {
		return
	}
	first := s.lastNumGC
	if n-first > uint32(len(s.stats.PauseNs)) {
		first = n - uint32(len(s.stats.PauseNs))
	}
	for i := first; i != n; i++ {
		s.pauses.Observe(float64(s.stats.PauseNs[i%uint32(len(s.stats.PauseNs))]) / 1e9)
	}
	s.lastNumGC = n
}

// updateCPU advances the whole-seconds CPU counter.
func (s *runtimeSampler) updateCPU() {
	cur := processCPUSeconds()
	if cur <= 0 {
		return
	}
	delta := cur - s.cpuLast
	s.cpuLast = cur
	if delta <= 0 {
		return
	}
	s.cpuCarry += delta
	if whole := math.Floor(s.cpuCarry); whole >= 1 {
		s.cpu.Add(int64(whole))
		s.cpuCarry -= whole
	}
}
