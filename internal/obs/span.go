package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer is a lightweight span store: spans are started (optionally under
// a parent), annotated with attributes, and ended; the tracer keeps a
// bounded buffer of spans so a long-running server cannot grow without
// limit. In-process, a *Span pointer is the trace context; across
// processes, Span.Context carries the trace/span ids that Inject/Extract
// move over the wire and StartSpanContext rebinds on the far side.
type Tracer struct {
	mu     sync.Mutex
	nextID int64
	spans  []*Span // all spans in start order, bounded by maxSpans
}

// maxSpans bounds the tracer's buffer; older spans are evicted whole-tree
// agnostic (oldest first).
const maxSpans = 4096

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{}
}

// Span is one timed operation. Fields are guarded by mu; the identity
// fields (ids, parent links, name, start) are immutable after creation.
type Span struct {
	tracer *Tracer
	ID     int64
	Parent int64 // 0 = no local parent (locally rooted)
	Name   string
	Start  time.Time

	// Cross-process identity. TraceID is shared by every span of one
	// trace (inherited from the parent, or from a remote SpanContext, or
	// freshly generated for a root). ParentSpanID is the wire id of the
	// parent span — the local parent's, or the remote caller's for spans
	// started via StartSpanContext; zero for true roots.
	TraceID      TraceID
	SpanID       SpanID
	ParentSpanID SpanID

	mu    sync.Mutex
	end   time.Time
	attrs []field
	err   string
}

// StartSpan begins a root span with a freshly generated trace id.
func (t *Tracer) StartSpan(name string) *Span {
	return t.startSpan(name, 0, newTraceID(), SpanID{})
}

// StartSpanContext begins a span as a remote child of sc: it joins sc's
// trace and records sc's span id as its parent, while remaining a local
// root (Parent == 0) in this process's forest. An invalid sc degrades to
// StartSpan — a fresh local trace — so callers never need to branch on
// whether a peer propagated context.
func (t *Tracer) StartSpanContext(name string, sc SpanContext) *Span {
	if !sc.Valid() {
		return t.StartSpan(name)
	}
	return t.startSpan(name, 0, sc.TraceID, sc.SpanID)
}

func (t *Tracer) startSpan(name string, parent int64, tid TraceID, parentSpanID SpanID) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	s := &Span{
		tracer: t, ID: t.nextID, Parent: parent, Name: name, Start: time.Now(),
		TraceID: tid, SpanID: newSpanID(), ParentSpanID: parentSpanID,
	}
	t.spans = append(t.spans, s)
	if len(t.spans) > maxSpans {
		t.spans = append([]*Span(nil), t.spans[len(t.spans)-maxSpans:]...)
	}
	t.mu.Unlock()
	return s
}

// Child begins a span parented to s, inheriting its trace id. A nil
// receiver returns nil, so call chains off an absent tracer stay safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.startSpan(name, s.ID, s.TraceID, s.SpanID)
}

// Context returns the span's propagatable identity. A nil receiver
// returns the invalid zero context, which Inject renders as "".
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, field{key: key, val: fmt.Sprint(value)})
	s.mu.Unlock()
}

// SetError records an error on the span (nil err is a no-op).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// End marks the span finished. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Duration returns end-start (zero while the span is still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.Start)
}

// SpanInfo is an immutable snapshot of one span. TraceID/SpanID/
// ParentSpanID are the lowercase-hex wire ids (ParentSpanID is empty for
// true roots).
type SpanInfo struct {
	ID           int64
	Parent       int64
	Name         string
	TraceID      string
	SpanID       string
	ParentSpanID string
	Start        time.Time
	Duration     time.Duration
	Ended        bool
	Attrs        map[string]string
	Err          string
}

// Spans returns snapshots of all retained spans in start order.
func (t *Tracer) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanInfo, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		info := SpanInfo{
			ID: s.ID, Parent: s.Parent, Name: s.Name, Start: s.Start,
			TraceID: s.TraceID.String(), SpanID: s.SpanID.String(),
			Ended: !s.end.IsZero(), Err: s.err,
			Attrs: make(map[string]string, len(s.attrs)),
		}
		if !s.ParentSpanID.IsZero() {
			info.ParentSpanID = s.ParentSpanID.String()
		}
		if info.Ended {
			info.Duration = s.end.Sub(s.Start)
		}
		for _, f := range s.attrs {
			info.Attrs[f.key] = f.val
		}
		s.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// Roots returns the retained root spans (Parent == 0) in start order.
func (t *Tracer) Roots() []SpanInfo {
	var out []SpanInfo
	for _, s := range t.Spans() {
		if s.Parent == 0 {
			out = append(out, s)
		}
	}
	return out
}

// Children returns the direct children of the span with the given id.
func (t *Tracer) Children(id int64) []SpanInfo {
	var out []SpanInfo
	for _, s := range t.Spans() {
		if s.Parent == id {
			out = append(out, s)
		}
	}
	return out
}

// TreeString renders all retained spans as an indented forest, one span
// per line: name, duration, attributes, and error if any.
func (t *Tracer) TreeString() string {
	spans := t.Spans()
	children := make(map[int64][]SpanInfo)
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	var b strings.Builder
	var render func(parent int64, depth int)
	render = func(parent int64, depth int) {
		for _, s := range children[parent] {
			b.WriteString(strings.Repeat("  ", depth))
			b.WriteString(s.Name)
			if s.Ended {
				fmt.Fprintf(&b, " %v", s.Duration.Round(time.Microsecond))
			} else {
				b.WriteString(" (open)")
			}
			if len(s.Attrs) > 0 {
				keys := make([]string, 0, len(s.Attrs))
				for k := range s.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(&b, " %s=%s", k, quoteIfNeeded(s.Attrs[k]))
				}
			}
			if s.Err != "" {
				fmt.Fprintf(&b, " err=%s", quoteIfNeeded(s.Err))
			}
			b.WriteByte('\n')
			render(s.ID, depth+1)
		}
	}
	render(0, 0)
	return b.String()
}
