package profile

import (
	"sort"

	"gridftp.dev/instant/internal/obs"
)

// This file turns parsed profiles into the tables the rest of the plane
// consumes: per-function flat/cum aggregation, top-N ranking, and
// table-vs-table diffs. Tables are plain []obs.ProfileFrame so the admin
// plane, fleet federation, and diagnostic bundles all speak one shape.

// FrameTable aggregates one sample-type index of a profile into
// per-function flat and cumulative totals. Flat goes to the leaf
// function (Sample.Stack[0] — pprof stacks are leaf-first); cum goes to
// every distinct function on the stack, deduplicated so recursion does
// not double-count.
func FrameTable(p *Profile, valueIdx int) []obs.ProfileFrame {
	if p == nil || valueIdx < 0 {
		return nil
	}
	type agg struct{ flat, cum int64 }
	byFunc := make(map[string]*agg)
	seen := make(map[string]bool) // per-sample cum dedup, reused across samples
	for _, s := range p.Samples {
		if valueIdx >= len(s.Values) || len(s.Stack) == 0 {
			continue
		}
		v := s.Values[valueIdx]
		if v == 0 {
			continue
		}
		leaf := s.Stack[0].Func
		a := byFunc[leaf]
		if a == nil {
			a = &agg{}
			byFunc[leaf] = a
		}
		a.flat += v
		clear(seen)
		for _, fr := range s.Stack {
			if seen[fr.Func] {
				continue
			}
			seen[fr.Func] = true
			a := byFunc[fr.Func]
			if a == nil {
				a = &agg{}
				byFunc[fr.Func] = a
			}
			a.cum += v
		}
	}
	out := make([]obs.ProfileFrame, 0, len(byFunc))
	for fn, a := range byFunc {
		out = append(out, obs.ProfileFrame{Func: fn, Flat: a.flat, Cum: a.cum})
	}
	sortFrames(out)
	return out
}

// sortFrames orders by flat desc, then cum desc, then name for
// determinism.
func sortFrames(frames []obs.ProfileFrame) {
	sort.Slice(frames, func(i, j int) bool {
		if frames[i].Flat != frames[j].Flat {
			return frames[i].Flat > frames[j].Flat
		}
		if frames[i].Cum != frames[j].Cum {
			return frames[i].Cum > frames[j].Cum
		}
		return frames[i].Func < frames[j].Func
	})
}

// TopN returns the first n frames of a sorted table (the table itself
// when shorter), copying so callers can hold the result across ring
// eviction.
func TopN(frames []obs.ProfileFrame, n int) []obs.ProfileFrame {
	if n <= 0 || len(frames) == 0 {
		return nil
	}
	if n > len(frames) {
		n = len(frames)
	}
	out := make([]obs.ProfileFrame, n)
	copy(out, frames[:n])
	return out
}

// DiffTables subtracts base from cur per function: Delta = cur.Flat -
// base.Flat (Flat/Cum carry the current values; functions only in base
// appear with Flat 0 and negative Delta). Sorted by Delta descending —
// the top of the result is what regressed the most. onlyGrowth drops
// frames whose Delta <= 0 (the shape regression attribution wants);
// diff views keep both signs so improvements are visible too.
func DiffTables(cur, base []obs.ProfileFrame, onlyGrowth bool) []obs.ProfileFrame {
	baseBy := make(map[string]obs.ProfileFrame, len(base))
	for _, f := range base {
		baseBy[f.Func] = f
	}
	out := make([]obs.ProfileFrame, 0, len(cur))
	seen := make(map[string]bool, len(cur))
	for _, f := range cur {
		b := baseBy[f.Func]
		d := obs.ProfileFrame{Func: f.Func, Flat: f.Flat, Cum: f.Cum, Delta: f.Flat - b.Flat}
		seen[f.Func] = true
		if onlyGrowth && d.Delta <= 0 {
			continue
		}
		out = append(out, d)
	}
	if !onlyGrowth {
		for _, b := range base {
			if !seen[b.Func] {
				out = append(out, obs.ProfileFrame{Func: b.Func, Delta: -b.Flat})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Delta != out[j].Delta {
			return out[i].Delta > out[j].Delta
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// WindowDelta converts two consecutive cumulative-since-process-start
// tables (alloc_space, mutex/block delay) into a per-window table:
// Flat/Cum are the growth between the captures, with negative growth
// (a counter reset, or sampling jitter) clamped to zero and all-zero
// frames dropped. The result is sorted like any other table.
func WindowDelta(cur, prev []obs.ProfileFrame) []obs.ProfileFrame {
	prevBy := make(map[string]obs.ProfileFrame, len(prev))
	for _, f := range prev {
		prevBy[f.Func] = f
	}
	out := make([]obs.ProfileFrame, 0, len(cur))
	for _, f := range cur {
		b := prevBy[f.Func]
		w := obs.ProfileFrame{Func: f.Func, Flat: max(f.Flat-b.Flat, 0), Cum: max(f.Cum-b.Cum, 0)}
		if w.Flat == 0 && w.Cum == 0 {
			continue
		}
		out = append(out, w)
	}
	sortFrames(out)
	return out
}

// SumFlat totals the flat column of a table.
func SumFlat(frames []obs.ProfileFrame) int64 {
	var total int64
	for _, f := range frames {
		total += f.Flat
	}
	return total
}
