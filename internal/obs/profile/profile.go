package profile

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// Profile kinds captured every window. CPU comes from a short
// StartCPUProfile sample; the rest are the runtime's named profiles.
const (
	KindCPU       = "cpu"
	KindHeap      = "heap" // the "allocs" lookup: alloc_space/objects + inuse_space/objects
	KindMutex     = "mutex"
	KindBlock     = "block"
	KindGoroutine = "goroutine"
)

// Kinds lists every capture kind in display order.
var Kinds = []string{KindCPU, KindHeap, KindMutex, KindBlock, KindGoroutine}

// cumulativeValue names the since-process-start sample type per kind
// that must be windowed by subtracting consecutive captures. CPU,
// inuse_space, and goroutine captures are per-window (or point-in-time)
// already.
var cumulativeValue = map[string]string{
	KindHeap:  "alloc_space",
	KindMutex: "delay",
	KindBlock: "delay",
}

// Options configure a Profiler. The zero value is usable: 10s windows,
// 250ms CPU sample per window, ~5min of raw captures, ~2h of summaries
// (mirroring the tsdb two-tier retention), top-10 tables.
type Options struct {
	// Interval is the capture cadence (and window length). Default 10s.
	Interval time.Duration
	// CPUDuration is how long each window's CPU profile samples for.
	// Default 250ms — 2.5% of the default window, at the runtime's 1%-ish
	// sampling overhead. Zero keeps the default; negative disables CPU
	// capture entirely.
	CPUDuration time.Duration
	// Recent is how many raw windows (gzipped pprof bytes + full tables)
	// the hot tier retains. Default 30 (~5min at the default interval).
	Recent int
	// History is how many downsampled summaries (top-N tables only, no
	// raw bytes) the cold tier retains. Default 720 (~2h).
	History int
	// TopN bounds every exported table. Default 10.
	TopN int
	// Obs receives obs.profile.* registry metrics and time series; its
	// event log gets a capture-failure event. May be nil.
	Obs *obs.Obs
	// Now overrides the clock for tests.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 10 * time.Second
	}
	if o.CPUDuration == 0 {
		o.CPUDuration = 250 * time.Millisecond
	}
	if o.Recent <= 0 {
		o.Recent = 30
	}
	if o.History <= 0 {
		o.History = 720
	}
	if o.TopN <= 0 {
		o.TopN = 10
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Window is one completed capture window in the hot tier: raw pprof
// bytes per kind plus the windowed per-function tables derived from
// them.
type Window struct {
	obs.ProfileWindow
	// Raw holds the gzipped pprof capture per kind, as written by
	// runtime/pprof — downloadable from the admin plane and included in
	// diagnostic bundles.
	Raw map[string][]byte
	// Tables holds the per-window flat/cum function tables per kind
	// (cumulative kinds already windowed against the previous capture).
	Tables map[string][]obs.ProfileFrame
	// Summary is the compact view that outlives the hot tier.
	Summary obs.ProfileSummary
}

// Profiler continuously captures the runtime's profiles into a bounded
// two-tier ring and derives rates, top-N tables, and regression ratios
// from them. It implements obs.ContinuousProfiler.
type Profiler struct {
	opts Options

	captureMu sync.Mutex // serializes CaptureOnce (CPU capture is process-global)

	mu      sync.Mutex
	nextID  int
	recent  []*Window            // hot tier, oldest first
	history []obs.ProfileSummary // cold tier, oldest first
	prevCum map[string][]obs.ProfileFrame
	prevWin map[string][]obs.ProfileFrame // previous window's windowed tables
	last    time.Time                     // end of previous window
	lastMem runtime.MemStats

	captures *obs.Counter
	failures *obs.Counter
	capSec   *obs.Histogram

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a Profiler. Call Start for the background loop, or drive
// CaptureOnce directly (tests, benchmarks).
func New(opts Options) *Profiler {
	opts = opts.withDefaults()
	p := &Profiler{
		opts:    opts,
		prevCum: make(map[string][]obs.ProfileFrame),
		prevWin: make(map[string][]obs.ProfileFrame),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	reg := opts.Obs.Registry()
	p.captures = reg.Counter("obs.profile.captures_total")
	p.failures = reg.Counter("obs.profile.capture_failures_total")
	p.capSec = reg.Histogram("obs.profile.capture_seconds", []float64{
		1e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5,
	})
	reg.GaugeFunc("obs.profile.windows", func() int64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return int64(len(p.recent) + len(p.history))
	})
	return p
}

// Interval returns the configured capture cadence.
func (p *Profiler) Interval() time.Duration { return p.opts.Interval }

// Start launches the capture loop. Stop tears it down.
func (p *Profiler) Start() {
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				if _, err := p.CaptureOnce(); err != nil {
					p.opts.Obs.Logger().Warn("profile capture failed", "err", err)
				}
			}
		}
	}()
}

// Stop halts the capture loop and waits for it to exit. Safe to call
// multiple times and without a prior Start... but then it blocks; only
// call after Start.
func (p *Profiler) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// CaptureOnce performs one full capture window synchronously: CPU
// sample (blocking for CPUDuration), the named runtime profiles, parse,
// windowing, summary, ring commit, and telemetry. Returns the window's
// summary.
func (p *Profiler) CaptureOnce() (obs.ProfileSummary, error) {
	p.captureMu.Lock()
	defer p.captureMu.Unlock()

	wallStart := time.Now()
	start := p.opts.Now()
	raw := make(map[string][]byte, len(Kinds))

	// CPU: a short in-window sample. StartCPUProfile is process-global
	// and fails if something else (a bench harness, /debug/pprof/profile)
	// is already sampling — that window simply lacks a CPU table.
	if p.opts.CPUDuration > 0 {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err == nil {
			time.Sleep(p.opts.CPUDuration)
			pprof.StopCPUProfile()
			raw[KindCPU] = buf.Bytes()
		}
	}
	for kind, name := range map[string]string{
		KindHeap:      "allocs",
		KindMutex:     "mutex",
		KindBlock:     "block",
		KindGoroutine: "goroutine",
	} {
		prof := pprof.Lookup(name)
		if prof == nil {
			continue
		}
		var buf bytes.Buffer
		if err := prof.WriteTo(&buf, 0); err != nil {
			p.failures.Inc()
			continue
		}
		raw[kind] = buf.Bytes()
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	end := p.opts.Now()

	sum, err := p.analyze(start, end, raw, mem)
	p.capSec.Observe(time.Since(wallStart).Seconds())
	if err != nil {
		// A kind that failed to parse is dropped from the window; the
		// window itself still committed with whatever parsed.
		p.failures.Inc()
	}
	p.captures.Inc()
	p.emit(sum, end)
	return sum, err
}

// analyze parses the raw captures, windows the cumulative kinds,
// derives the summary, and commits the window to the rings.
func (p *Profiler) analyze(start, end time.Time, raw map[string][]byte, mem runtime.MemStats) (obs.ProfileSummary, error) {
	tables := make(map[string][]obs.ProfileFrame, len(raw))
	cums := make(map[string][]obs.ProfileFrame)
	var firstErr error
	for kind, data := range raw {
		prof, err := ParsePprof(data)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", kind, err)
			}
			continue
		}
		switch kind {
		case KindCPU:
			tables[kind] = FrameTable(prof, prof.ValueIndex("cpu"))
		case KindGoroutine:
			tables[kind] = FrameTable(prof, 0)
		default:
			cums[kind] = FrameTable(prof, prof.ValueIndex(cumulativeValue[kind]))
		}
		if kind == KindHeap {
			tables["heap_inuse"] = FrameTable(prof, prof.ValueIndex("inuse_space"))
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()

	first := p.last.IsZero()
	for kind, cum := range cums {
		tables[kind] = WindowDelta(cum, p.prevCum[kind])
		p.prevCum[kind] = cum
	}

	id := p.nextID
	p.nextID++
	sum := obs.ProfileSummary{
		Window: obs.ProfileWindow{ID: id, Start: start, End: end},
	}
	if first {
		// Cumulative kinds have no baseline yet: the "window" would span
		// the whole process lifetime. Record the capture as the baseline
		// but report nothing.
		sum.Window.Start = end
	}

	wall := end.Sub(p.last)
	if first || wall <= 0 {
		wall = end.Sub(start)
	}
	if !first && wall > 0 {
		sum.AllocBytesPerSec = float64(mem.TotalAlloc-p.lastMem.TotalAlloc) / wall.Seconds()
	}
	if cpuNanos := SumFlat(tables[KindCPU]); cpuNanos > 0 && p.opts.CPUDuration > 0 {
		sum.CPUBusyFrac = float64(cpuNanos) / float64(p.opts.CPUDuration.Nanoseconds())
	}
	sum.TopCPU = TopN(tables[KindCPU], p.opts.TopN)
	if !first {
		sum.TopAlloc = TopN(tables[KindHeap], p.opts.TopN)
		sum.TopRegressed = TopN(DiffTables(tables[KindHeap], p.prevWin[KindHeap], true), p.opts.TopN)
	}

	// Regression ratios: this window's rate over the previous window's.
	// The alert rules page when the ratio stays high across consecutive
	// windows — a step change, not a blip.
	if prev := p.prevSummaryLocked(); prev != nil {
		sum.AllocRegression = ratio(sum.AllocBytesPerSec, prev.AllocBytesPerSec)
		sum.CPURegression = ratio(sum.CPUBusyFrac, prev.CPUBusyFrac)
	}

	win := &Window{ProfileWindow: sum.Window, Raw: raw, Tables: tables, Summary: sum}
	p.recent = append(p.recent, win)
	if n := len(p.recent) - p.opts.Recent; n > 0 {
		// Demote evicted raw windows to the summary-only cold tier.
		for _, old := range p.recent[:n] {
			p.history = append(p.history, old.Summary)
		}
		p.recent = append(p.recent[:0], p.recent[n:]...)
	}
	if n := len(p.history) - p.opts.History; n > 0 {
		p.history = append(p.history[:0], p.history[n:]...)
	}

	for kind := range cumulativeValue {
		p.prevWin[kind] = tables[kind]
	}
	p.prevWin[KindCPU] = tables[KindCPU]
	p.last = end
	p.lastMem = mem

	return sum, firstErr
}

// prevSummaryLocked returns the newest committed summary, if any.
func (p *Profiler) prevSummaryLocked() *obs.ProfileSummary {
	if n := len(p.recent); n > 0 {
		return &p.recent[n-1].Summary
	}
	if n := len(p.history); n > 0 {
		return &p.history[n-1]
	}
	return nil
}

// ratio guards a rate comparison against a zero/tiny baseline: with no
// meaningful baseline there is no regression signal, so report 1.
func ratio(cur, prev float64) float64 {
	if prev <= 0 || cur < 0 {
		return 1
	}
	return cur / prev
}

// emit feeds the summary into the time-series sink (nil-safe).
func (p *Profiler) emit(sum obs.ProfileSummary, at time.Time) {
	ts := p.opts.Obs.TimeSeries()
	ts.Observe("obs.profile.alloc.bytes_per_sec", at, sum.AllocBytesPerSec)
	ts.Observe("obs.profile.cpu.busy_frac", at, sum.CPUBusyFrac)
	ts.Observe("obs.profile.alloc.regression_ratio", at, sum.AllocRegression)
	ts.Observe("obs.profile.cpu.regression_ratio", at, sum.CPURegression)
}

// ProfileSummary implements obs.ContinuousProfiler: the newest window's
// summary, ok=false until the first post-baseline window completes.
func (p *Profiler) ProfileSummary() (obs.ProfileSummary, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	prev := p.prevSummaryLocked()
	if prev == nil || prev.Window.ID == 0 {
		// Window 0 is the baseline capture; it carries no windowed data.
		return obs.ProfileSummary{}, false
	}
	return *prev, true
}

// Windows lists every retained window's summary, oldest first: the cold
// tier's summaries followed by the hot tier's.
func (p *Profiler) Windows() []obs.ProfileSummary {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]obs.ProfileSummary, 0, len(p.history)+len(p.recent))
	out = append(out, p.history...)
	for _, w := range p.recent {
		out = append(out, w.Summary)
	}
	return out
}

// Window returns the hot-tier window with the given id (summaries in
// the cold tier have no raw bytes or full tables left).
func (p *Profiler) Window(id int) (*Window, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.windowLocked(id)
}

func (p *Profiler) windowLocked(id int) (*Window, bool) {
	for _, w := range p.recent {
		if w.ID == id {
			return w, true
		}
	}
	return nil, false
}

// Raw returns the gzipped pprof capture for one kind of one hot-tier
// window, e.g. for download from the admin plane.
func (p *Profiler) Raw(id int, kind string) ([]byte, bool) {
	w, ok := p.Window(id)
	if !ok {
		return nil, false
	}
	data, ok := w.Raw[kind]
	return data, ok
}

// Top returns the newest window's top-n table for a kind ("cpu",
// "heap", "heap_inuse", "mutex", "block", "goroutine").
func (p *Profiler) Top(kind string, n int) []obs.ProfileFrame {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.recent) == 0 {
		return nil
	}
	return TopN(p.recent[len(p.recent)-1].Tables[kind], n)
}

// DiffWindows diffs one kind's table between two hot-tier windows
// (base, cur), sorted by growth. Returns false if either window has
// left the hot tier.
func (p *Profiler) DiffWindows(baseID, curID int, kind string) ([]obs.ProfileFrame, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	base, ok1 := p.windowLocked(baseID)
	cur, ok2 := p.windowLocked(curID)
	if !ok1 || !ok2 {
		return nil, false
	}
	return DiffTables(cur.Tables[kind], base.Tables[kind], false), true
}

// LatestID returns the newest hot-tier window id, ok=false before the
// first capture.
func (p *Profiler) LatestID() (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.recent) == 0 {
		return 0, false
	}
	return p.recent[len(p.recent)-1].ID, true
}

// KindsSorted returns the table kinds present in the newest window.
func (p *Profiler) KindsSorted() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.recent) == 0 {
		return nil
	}
	w := p.recent[len(p.recent)-1]
	out := make([]string, 0, len(w.Tables))
	for k := range w.Tables {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
