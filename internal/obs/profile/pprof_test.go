package profile

import (
	"bytes"
	"compress/gzip"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
)

// captureHeap grabs a real gzipped allocs profile from the running
// test binary — the parser's ground truth is whatever runtime/pprof
// actually writes.
func captureHeap(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&buf, 0); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

//go:noinline
func chewMemory(n int) [][]byte {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, make([]byte, 4096))
	}
	return out
}

func TestParseRealHeapProfile(t *testing.T) {
	sink := chewMemory(600) // ~2.4 MB, well past the 512KiB sampling rate
	runtime.KeepAlive(sink)
	data := captureHeap(t)
	p, err := ParsePprof(data)
	if err != nil {
		t.Fatalf("ParsePprof: %v", err)
	}
	idx := p.ValueIndex("alloc_space")
	if idx < 0 {
		t.Fatalf("alloc_space sample type missing; got %+v", p.SampleTypes)
	}
	if p.TotalValue(idx) <= 0 {
		t.Fatalf("alloc_space total = %d, want > 0", p.TotalValue(idx))
	}
	table := FrameTable(p, idx)
	if len(table) == 0 {
		t.Fatal("empty frame table from a live heap profile")
	}
	found := false
	for _, f := range table {
		if strings.Contains(f.Func, "chewMemory") {
			found = true
			if f.Flat <= 0 {
				t.Errorf("chewMemory flat = %d, want > 0", f.Flat)
			}
		}
	}
	if !found {
		t.Errorf("chewMemory not attributed in heap table (top: %+v)", TopN(table, 5))
	}
}

func TestParseRealGoroutineProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 0); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	p, err := ParsePprof(buf.Bytes())
	if err != nil {
		t.Fatalf("ParsePprof: %v", err)
	}
	if len(p.Samples) == 0 {
		t.Fatal("goroutine profile has no samples")
	}
	if got := p.TotalValue(0); got < 1 {
		t.Fatalf("goroutine count = %d, want >= 1", got)
	}
}

func TestParseUncompressedProto(t *testing.T) {
	data := captureHeap(t)
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("gzip: %v", err)
	}
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(zr); err != nil {
		t.Fatalf("inflate: %v", err)
	}
	p, err := ParsePprof(raw.Bytes())
	if err != nil {
		t.Fatalf("ParsePprof(raw proto): %v", err)
	}
	if p.ValueIndex("inuse_space") < 0 {
		t.Fatalf("inuse_space missing from %+v", p.SampleTypes)
	}
}

func TestParseMalformedInputs(t *testing.T) {
	real := captureHeap(t)
	cases := map[string][]byte{
		"empty":             {},
		"gzip magic only":   {0x1f, 0x8b},
		"truncated gzip":    real[:len(real)/2],
		"overlong varint":   {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
		"length past end":   {0x0a, 0x7f, 0x01},
		"field number zero": {0x00, 0x01},
	}
	for name, data := range cases {
		if _, err := ParsePprof(data); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
	// Unknown fields and empty-but-valid messages must parse.
	if _, err := ParsePprof([]byte{}); err == nil {
		t.Error("empty input parsed; want error")
	}
	if p, err := ParsePprof([]byte{0x78, 0x01}); err != nil || p.TimeNanos != 1 {
		// field 15 varint=1: unknown to us, skipped, empty profile.
		if err != nil {
			t.Errorf("unknown-field input: %v", err)
		}
	}
}

func TestParseZipBombRejected(t *testing.T) {
	var comp bytes.Buffer
	zw := gzip.NewWriter(&comp)
	zero := make([]byte, 1<<20)
	for i := 0; i < 70; i++ { // 70 MiB of zeros, > maxDecompressedProfile
		zw.Write(zero)
	}
	zw.Close()
	if _, err := ParsePprof(comp.Bytes()); err == nil {
		t.Fatal("64MiB+ decompressed profile accepted; want rejection")
	}
}

func FuzzParsePprof(f *testing.F) {
	// Seeds: real captures plus handcrafted edge shapes — malformed
	// varints, truncated gzip, oversized string-table indices.
	var heap bytes.Buffer
	pprof.Lookup("allocs").WriteTo(&heap, 0)
	f.Add(heap.Bytes())
	var goro bytes.Buffer
	pprof.Lookup("goroutine").WriteTo(&goro, 0)
	f.Add(goro.Bytes())
	if len(heap.Bytes()) > 64 {
		f.Add(heap.Bytes()[:64]) // truncated gzip
	}
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	// Sample referencing string index 1000 with a 1-entry table.
	f.Add([]byte{
		0x0a, 0x04, 0x08, 0xe8, 0x07, 0x10, 0x01, // sample_type{type:1000 unit:1}
		0x32, 0x00, // string_table[0] = ""
	})
	// Packed location_ids with a junk tail.
	f.Add([]byte{0x12, 0x05, 0x0a, 0x03, 0x01, 0x02, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePprof(data)
		if err != nil {
			return
		}
		// Whatever parses must be safely traversable.
		for _, vt := range p.SampleTypes {
			_ = vt.Type
		}
		for i := range p.SampleTypes {
			_ = p.TotalValue(i)
			_ = FrameTable(p, i)
		}
		for _, s := range p.Samples {
			if len(p.SampleTypes) > 0 && len(s.Values) > len(p.SampleTypes) {
				t.Fatalf("sample with %d values escaped the %d-type header check",
					len(s.Values), len(p.SampleTypes))
			}
		}
	})
}
