package profile

import (
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// syntheticClock advances a fixed step per reading, keeping window math
// deterministic regardless of real capture latency.
type syntheticClock struct {
	t    time.Time
	step time.Duration
}

func (c *syntheticClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func newTestProfiler(o *obs.Obs) (*Profiler, *syntheticClock) {
	clk := &syntheticClock{t: time.Unix(1_700_000_000, 0), step: 5 * time.Second}
	p := New(Options{
		Interval:    10 * time.Second,
		CPUDuration: 5 * time.Millisecond,
		Recent:      4,
		History:     6,
		TopN:        10,
		Obs:         o,
		Now:         clk.now,
	})
	return p, clk
}

func TestCaptureWindowsAndRings(t *testing.T) {
	o := obs.Nop()
	p, _ := newTestProfiler(o)
	for i := 0; i < 12; i++ {
		sink := chewMemory(300)
		if _, err := p.CaptureOnce(); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		_ = sink
	}
	wins := p.Windows()
	// 12 captures, hot tier 4, cold tier 6 → oldest 2 evicted entirely.
	if len(wins) != 10 {
		t.Fatalf("retained %d windows, want 10", len(wins))
	}
	for i := 1; i < len(wins); i++ {
		if wins[i].Window.ID <= wins[i-1].Window.ID {
			t.Fatalf("window ids not increasing: %d then %d", wins[i-1].Window.ID, wins[i].Window.ID)
		}
	}
	sum, ok := p.ProfileSummary()
	if !ok {
		t.Fatal("ProfileSummary not ready after 12 captures")
	}
	if sum.AllocBytesPerSec <= 0 {
		t.Fatalf("AllocBytesPerSec = %v, want > 0 (test allocates every window)", sum.AllocBytesPerSec)
	}
	if len(sum.TopAlloc) == 0 {
		t.Fatal("TopAlloc empty despite per-window allocations")
	}
	if got := o.Metrics.Counter("obs.profile.captures_total").Value(); got != 12 {
		t.Fatalf("captures_total = %d, want 12", got)
	}
	// Raw bytes must exist for hot-tier windows and be gzipped pprof.
	id, ok := p.LatestID()
	if !ok {
		t.Fatal("no latest window")
	}
	raw, ok := p.Raw(id, KindHeap)
	if !ok || len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("hot-tier heap capture missing or not gzip (ok=%v len=%d)", ok, len(raw))
	}
	// Evicted windows keep summaries but lose raw bytes.
	if _, ok := p.Window(0); ok {
		t.Fatal("window 0 still in hot tier after 12 captures with Recent=4")
	}
}

func TestProfileSummaryNotReadyBeforeBaseline(t *testing.T) {
	p, _ := newTestProfiler(obs.Nop())
	if _, ok := p.ProfileSummary(); ok {
		t.Fatal("summary ready before any capture")
	}
	if _, err := p.CaptureOnce(); err != nil {
		t.Fatalf("baseline capture: %v", err)
	}
	if _, ok := p.ProfileSummary(); ok {
		t.Fatal("summary ready after baseline-only capture")
	}
	if _, err := p.CaptureOnce(); err != nil {
		t.Fatalf("capture: %v", err)
	}
	if _, ok := p.ProfileSummary(); !ok {
		t.Fatal("summary not ready after first full window")
	}
}

func TestAllocAttributionNamesOwner(t *testing.T) {
	p, _ := newTestProfiler(obs.Nop())
	if _, err := p.CaptureOnce(); err != nil { // baseline
		t.Fatalf("baseline: %v", err)
	}
	sink := chewMemory(2000) // ~8 MB inside the window
	if _, err := p.CaptureOnce(); err != nil {
		t.Fatalf("capture: %v", err)
	}
	_ = sink
	table := p.Top(KindHeap, 10)
	for _, f := range table {
		if strings.Contains(f.Func, "chewMemory") && f.Flat > 0 {
			return
		}
	}
	t.Fatalf("chewMemory not in windowed alloc top-10: %+v", table)
}

func TestDiffWindowsSeesGrowth(t *testing.T) {
	p, _ := newTestProfiler(obs.Nop())
	if _, err := p.CaptureOnce(); err != nil { // baseline
		t.Fatalf("baseline: %v", err)
	}
	if _, err := p.CaptureOnce(); err != nil { // quiet window
		t.Fatalf("quiet: %v", err)
	}
	quietID, _ := p.LatestID()
	sink := chewMemory(2000)
	if _, err := p.CaptureOnce(); err != nil { // busy window
		t.Fatalf("busy: %v", err)
	}
	_ = sink
	busyID, _ := p.LatestID()
	diff, ok := p.DiffWindows(quietID, busyID, KindHeap)
	if !ok {
		t.Fatal("DiffWindows: windows missing from hot tier")
	}
	if len(diff) == 0 {
		t.Fatal("empty diff despite an allocation burst")
	}
	if diff[0].Delta <= 0 {
		t.Fatalf("top diff frame delta = %d, want > 0", diff[0].Delta)
	}
	for _, f := range diff {
		if strings.Contains(f.Func, "chewMemory") && f.Delta > 0 {
			return
		}
	}
	t.Fatalf("chewMemory not in growth diff: %+v", TopN(diff, 8))
}

func TestSeriesEmitted(t *testing.T) {
	var got []string
	o := obs.Nop()
	o.Series = seriesFunc(func(name string, _ time.Time, _ float64) { got = append(got, name) })
	p, _ := newTestProfiler(o)
	p.CaptureOnce()
	p.CaptureOnce()
	want := map[string]bool{
		"obs.profile.alloc.bytes_per_sec":    false,
		"obs.profile.cpu.busy_frac":          false,
		"obs.profile.alloc.regression_ratio": false,
		"obs.profile.cpu.regression_ratio":   false,
	}
	for _, name := range got {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("series %s never observed (got %v)", name, got)
		}
	}
}

type seriesFunc func(string, time.Time, float64)

func (f seriesFunc) Observe(name string, at time.Time, v float64) { f(name, at, v) }

func TestStartStop(t *testing.T) {
	p := New(Options{Interval: 10 * time.Millisecond, CPUDuration: -1, Obs: obs.Nop()})
	p.Start()
	deadline := time.After(2 * time.Second)
	for {
		if _, ok := p.LatestID(); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no capture within 2s of Start")
		case <-time.After(5 * time.Millisecond):
		}
	}
	p.Stop()
	p.Stop() // idempotent
}

func TestNopProfilerViaObs(t *testing.T) {
	var o *obs.Obs
	if _, ok := o.Profiler().ProfileSummary(); ok {
		t.Fatal("nil Obs profiler reported a summary")
	}
	o2 := obs.Nop()
	if _, ok := o2.Profiler().ProfileSummary(); ok {
		t.Fatal("unattached profiler reported a summary")
	}
	p, _ := newTestProfiler(o2)
	o2.Profile = p
	if o2.Profiler() != obs.ContinuousProfiler(p) {
		t.Fatal("attached profiler not returned")
	}
}
