// Package profile is the continuous profiling plane: an always-on,
// low-overhead capturer of the Go runtime's CPU, heap, mutex, block,
// and goroutine profiles into a bounded two-tier window ring, with a
// stdlib-only parser for the gzipped pprof protobuf wire format so
// captures can be analyzed in-process — per-window top-N function
// tables, window-to-window diffs, and regression ratios that feed the
// obs.profile.* time series the SLO alert engine pages on.
//
// The ROADMAP's standing perf signal (E2's parallel-stream path burning
// ~60k allocs/op) is known only from coarse benchmarks; this package
// answers *which functions* own that cost, continuously, in the same
// process that moves the bytes. DotDFS-class transfer systems live and
// die by hot-path CPU/alloc behavior; attribution has to be as ambient
// as the metrics themselves.
//
// The package is stdlib-only and depends on internal/obs alone.
package profile

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the wire-format parser. The pprof protobuf schema
// (github.com/google/pprof/proto/profile.proto) is small and frozen;
// hand-rolling the subset we read keeps the module dependency-free. The
// parser is deliberately defensive — it feeds on bytes from disk, HTTP,
// and the fuzzer — and never panics on malformed input: every length is
// bounded by the remaining input, every varint by its 10-byte maximum.

// maxDecompressedProfile bounds how much a gzipped capture may inflate
// to — a zip bomb must not take down the daemon parsing its own ring.
const maxDecompressedProfile = 64 << 20

// ValueType names one sample dimension ("cpu"/"nanoseconds",
// "alloc_space"/"bytes").
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Frame is one resolved stack frame.
type Frame struct {
	Func string `json:"func"`
	File string `json:"file,omitempty"`
	Line int64  `json:"line,omitempty"`
}

// Sample is one profile sample: the resolved call stack (leaf first, as
// on the wire) and one value per sample type.
type Sample struct {
	Stack  []Frame `json:"stack"`
	Values []int64 `json:"values"`
}

// Profile is the parsed subset of a pprof capture the analysis layer
// needs: sample types, resolved samples, and the timing/period header.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	Period        int64
	PeriodType    ValueType
}

// ValueIndex returns the index of the named sample type (-1 when the
// profile does not carry it): "cpu" for CPU profiles, "alloc_space" /
// "inuse_space" / "alloc_objects" for heap, "delay" for mutex/block,
// "goroutine" for goroutine dumps.
func (p *Profile) ValueIndex(name string) int {
	for i, st := range p.SampleTypes {
		if st.Type == name {
			return i
		}
	}
	return -1
}

// TotalValue sums the given sample-type index over every sample.
func (p *Profile) TotalValue(idx int) int64 {
	if idx < 0 {
		return 0
	}
	var total int64
	for _, s := range p.Samples {
		if idx < len(s.Values) {
			total += s.Values[idx]
		}
	}
	return total
}

// ParsePprof parses a pprof capture: gzipped (as runtime/pprof writes)
// or raw protobuf. Malformed input returns an error, never a panic.
func ParsePprof(data []byte) (*Profile, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("profile: empty input")
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile: bad gzip header: %v", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, maxDecompressedProfile+1))
		zr.Close()
		if err != nil {
			return nil, fmt.Errorf("profile: truncated gzip stream: %v", err)
		}
		if len(raw) > maxDecompressedProfile {
			return nil, fmt.Errorf("profile: decompressed profile exceeds %d bytes", maxDecompressedProfile)
		}
		data = raw
	}
	return parseProto(data)
}

// ---- minimal protobuf decoding ----

// pbuf is a cursor over one protobuf message body.
type pbuf struct {
	data []byte
	pos  int
}

func (b *pbuf) done() bool { return b.pos >= len(b.data) }

// varint decodes one base-128 varint (10-byte maximum).
func (b *pbuf) varint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		if b.pos >= len(b.data) {
			return 0, fmt.Errorf("profile: truncated varint")
		}
		c := b.data[b.pos]
		b.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("profile: varint overflows 64 bits")
}

// field decodes the next field tag.
func (b *pbuf) field() (num int, wire int, err error) {
	tag, err := b.varint()
	if err != nil {
		return 0, 0, err
	}
	num, wire = int(tag>>3), int(tag&7)
	if num == 0 {
		return 0, 0, fmt.Errorf("profile: field number 0")
	}
	return num, wire, nil
}

// bytesField decodes a length-delimited (wire type 2) payload.
func (b *pbuf) bytesField() ([]byte, error) {
	n, err := b.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b.data)-b.pos) {
		return nil, fmt.Errorf("profile: length %d exceeds remaining %d bytes", n, len(b.data)-b.pos)
	}
	out := b.data[b.pos : b.pos+int(n)]
	b.pos += int(n)
	return out, nil
}

// skip consumes one field of the given wire type.
func (b *pbuf) skip(wire int) error {
	switch wire {
	case 0:
		_, err := b.varint()
		return err
	case 1:
		if len(b.data)-b.pos < 8 {
			return fmt.Errorf("profile: truncated fixed64")
		}
		b.pos += 8
		return nil
	case 2:
		_, err := b.bytesField()
		return err
	case 5:
		if len(b.data)-b.pos < 4 {
			return fmt.Errorf("profile: truncated fixed32")
		}
		b.pos += 4
		return nil
	default:
		return fmt.Errorf("profile: unsupported wire type %d", wire)
	}
}

// intValue reads a varint-typed field value regardless of wire type 0/1/5
// (pprof writers only use 0, but a fuzzer will try the rest).
func (b *pbuf) intValue(wire int) (uint64, error) {
	switch wire {
	case 0:
		return b.varint()
	case 1:
		if len(b.data)-b.pos < 8 {
			return 0, fmt.Errorf("profile: truncated fixed64")
		}
		v := binary.LittleEndian.Uint64(b.data[b.pos:])
		b.pos += 8
		return v, nil
	case 5:
		if len(b.data)-b.pos < 4 {
			return 0, fmt.Errorf("profile: truncated fixed32")
		}
		v := uint64(binary.LittleEndian.Uint32(b.data[b.pos:]))
		b.pos += 4
		return v, nil
	default:
		return 0, fmt.Errorf("profile: wire type %d for integer field", wire)
	}
}

// repeatedInts appends a packed or single varint field to dst.
func repeatedInts(b *pbuf, wire int, dst []uint64) ([]uint64, error) {
	if wire == 2 {
		payload, err := b.bytesField()
		if err != nil {
			return nil, err
		}
		inner := pbuf{data: payload}
		for !inner.done() {
			v, err := inner.varint()
			if err != nil {
				return nil, err
			}
			dst = append(dst, v)
		}
		return dst, nil
	}
	v, err := b.intValue(wire)
	if err != nil {
		return nil, err
	}
	return append(dst, v), nil
}

// ---- pprof message decoding ----

type rawValueType struct{ typ, unit uint64 } // string-table indices

type rawSample struct {
	locs   []uint64
	values []uint64
}

type rawLine struct {
	funcID uint64
	line   uint64
}

type rawLocation struct {
	id    uint64
	lines []rawLine
}

type rawFunction struct {
	id, name, file uint64
}

func decodeValueType(data []byte) (rawValueType, error) {
	var vt rawValueType
	b := pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1:
			if vt.typ, err = b.intValue(wire); err != nil {
				return vt, err
			}
		case 2:
			if vt.unit, err = b.intValue(wire); err != nil {
				return vt, err
			}
		default:
			if err = b.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func decodeSample(data []byte) (rawSample, error) {
	var s rawSample
	b := pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return s, err
		}
		switch num {
		case 1:
			if s.locs, err = repeatedInts(&b, wire, s.locs); err != nil {
				return s, err
			}
		case 2:
			if s.values, err = repeatedInts(&b, wire, s.values); err != nil {
				return s, err
			}
		default:
			if err = b.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func decodeLine(data []byte) (rawLine, error) {
	var l rawLine
	b := pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return l, err
		}
		switch num {
		case 1:
			if l.funcID, err = b.intValue(wire); err != nil {
				return l, err
			}
		case 2:
			if l.line, err = b.intValue(wire); err != nil {
				return l, err
			}
		default:
			if err = b.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func decodeLocation(data []byte) (rawLocation, error) {
	var loc rawLocation
	b := pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return loc, err
		}
		switch num {
		case 1:
			if loc.id, err = b.intValue(wire); err != nil {
				return loc, err
			}
		case 4:
			payload, err := b.bytesField()
			if err != nil {
				return loc, err
			}
			line, err := decodeLine(payload)
			if err != nil {
				return loc, err
			}
			loc.lines = append(loc.lines, line)
		default:
			if err = b.skip(wire); err != nil {
				return loc, err
			}
		}
	}
	return loc, nil
}

func decodeFunction(data []byte) (rawFunction, error) {
	var fn rawFunction
	b := pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return fn, err
		}
		switch num {
		case 1:
			if fn.id, err = b.intValue(wire); err != nil {
				return fn, err
			}
		case 2:
			if fn.name, err = b.intValue(wire); err != nil {
				return fn, err
			}
		case 4:
			if fn.file, err = b.intValue(wire); err != nil {
				return fn, err
			}
		default:
			if err = b.skip(wire); err != nil {
				return fn, err
			}
		}
	}
	return fn, nil
}

// parseProto decodes the top-level Profile message and resolves string
// table, functions, and locations into Frames.
func parseProto(data []byte) (*Profile, error) {
	var (
		sampleTypes []rawValueType
		samples     []rawSample
		locations   []rawLocation
		functions   []rawFunction
		strtab      []string
		periodType  rawValueType
		p           Profile
	)
	b := pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1, 2, 4, 5, 6, 11: // all length-delimited submessages / strings
			if wire != 2 {
				if err = b.skip(wire); err != nil {
					return nil, err
				}
				continue
			}
			payload, err := b.bytesField()
			if err != nil {
				return nil, err
			}
			switch num {
			case 1:
				vt, err := decodeValueType(payload)
				if err != nil {
					return nil, err
				}
				sampleTypes = append(sampleTypes, vt)
			case 2:
				s, err := decodeSample(payload)
				if err != nil {
					return nil, err
				}
				samples = append(samples, s)
			case 4:
				loc, err := decodeLocation(payload)
				if err != nil {
					return nil, err
				}
				locations = append(locations, loc)
			case 5:
				fn, err := decodeFunction(payload)
				if err != nil {
					return nil, err
				}
				functions = append(functions, fn)
			case 6:
				strtab = append(strtab, string(payload))
			case 11:
				vt, err := decodeValueType(payload)
				if err != nil {
					return nil, err
				}
				periodType = vt
			}
		case 9:
			v, err := b.intValue(wire)
			if err != nil {
				return nil, err
			}
			p.TimeNanos = int64(v)
		case 10:
			v, err := b.intValue(wire)
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		case 12:
			v, err := b.intValue(wire)
			if err != nil {
				return nil, err
			}
			p.Period = int64(v)
		default:
			if err = b.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return "" // out-of-range string index: unnamed, not an error
	}
	p.PeriodType = ValueType{Type: str(periodType.typ), Unit: str(periodType.unit)}
	for _, vt := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}

	funcsByID := make(map[uint64]rawFunction, len(functions))
	for _, fn := range functions {
		funcsByID[fn.id] = fn
	}
	framesByLoc := make(map[uint64][]Frame, len(locations))
	for _, loc := range locations {
		frames := make([]Frame, 0, len(loc.lines))
		// Location lines are innermost (inlined leaf) first on the wire.
		for _, line := range loc.lines {
			fr := Frame{Line: int64(line.line)}
			if fn, ok := funcsByID[line.funcID]; ok {
				fr.Func, fr.File = str(fn.name), str(fn.file)
			}
			if fr.Func == "" {
				fr.Func = fmt.Sprintf("func#%d", line.funcID)
			}
			frames = append(frames, fr)
		}
		if len(frames) == 0 {
			frames = append(frames, Frame{Func: fmt.Sprintf("loc#%d", loc.id)})
		}
		framesByLoc[loc.id] = frames
	}

	nTypes := len(p.SampleTypes)
	for _, s := range samples {
		rs := Sample{Values: make([]int64, 0, len(s.values))}
		for _, v := range s.values {
			rs.Values = append(rs.Values, int64(v))
		}
		// A sample claiming more values than there are sample types is
		// malformed enough to reject: downstream indexing trusts the header.
		if nTypes > 0 && len(rs.Values) > nTypes {
			return nil, fmt.Errorf("profile: sample carries %d values for %d sample types", len(rs.Values), nTypes)
		}
		for _, locID := range s.locs {
			if frames, ok := framesByLoc[locID]; ok {
				rs.Stack = append(rs.Stack, frames...)
			} else {
				rs.Stack = append(rs.Stack, Frame{Func: fmt.Sprintf("loc#%d", locID)})
			}
		}
		p.Samples = append(p.Samples, rs)
	}
	return &p, nil
}
