package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// Trace context: the wire-propagatable identity of a span, modeled on the
// W3C Trace Context recommendation. A trace id names one end-to-end
// operation (a hosted transfer task, a logon); a span id names one timed
// operation inside it. Processes exchange the pair as a "traceparent"
// string over whatever channel connects them — the GridFTP control
// channel (SITE TRACE), the MyProxy logon line — so a transfer that
// touches four processes still forms one trace.
//
// Wire format (the W3C traceparent header, version 00):
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^  ^ 16-byte trace id (32 hex)      ^ 8-byte span id  ^ flags
//
// Extract rejects anything malformed (wrong field count, wrong lengths,
// non-hex, all-zero ids) so a bad peer cannot poison local tracing; the
// caller degrades to a fresh local root trace.

// TraceID is the 16-byte identifier shared by every span of one trace.
type TraceID [16]byte

// SpanID is the 8-byte identifier of one span within a trace.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the id as lowercase hex (32 chars).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the id as lowercase hex (16 chars).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext identifies a span for cross-process propagation: the trace
// it belongs to and its own span id. The zero value is invalid (absent
// context); Valid distinguishes the two.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both ids are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// traceparentVersion is the only version Inject emits and Extract accepts.
const traceparentVersion = "00"

// Inject renders the context in traceparent form ("00-<trace>-<span>-01").
// An invalid context renders as the empty string, which Extract rejects —
// so Inject/Extract round-trip absence as absence.
func Inject(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	return traceparentVersion + "-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// Extract parses a traceparent string. It returns an error (and the zero
// context) for anything but a well-formed version-00 value with non-zero
// ids.
func Extract(tp string) (SpanContext, error) {
	parts := strings.Split(tp, "-")
	if len(parts) != 4 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: want 4 dash-separated fields, got %d", tp, len(parts))
	}
	if parts[0] != traceparentVersion {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: unsupported version %q", tp, parts[0])
	}
	if len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad field lengths", tp)
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(parts[1])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: trace id: %v", tp, err)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(parts[2])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: span id: %v", tp, err)
	}
	if _, err := hex.DecodeString(parts[3]); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: flags: %v", tp, err)
	}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: all-zero id", tp)
	}
	return sc, nil
}

// newTraceID returns a random non-zero trace id.
func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		rand.Read(t[:])
	}
	return t
}

// newSpanID returns a random non-zero span id.
func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		rand.Read(s[:])
	}
	return s
}
