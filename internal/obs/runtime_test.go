package obs

import (
	"runtime"
	"testing"
	"time"
)

// TestRuntimeMetricsRegistered asserts every default registry carries the
// Go runtime series and that the gauges read live values through the
// sampler.
func TestRuntimeMetricsRegistered(t *testing.T) {
	o := Nop()
	byName := make(map[string]Metric)
	for _, m := range o.Registry().Snapshot() {
		byName[m.Name] = m
	}
	for _, name := range []string{
		"go.gc.pause_seconds", "go.heap.alloc_bytes", "go.heap.objects",
		"go.goroutines", "process.cpu_seconds_total",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("runtime series %s missing from default registry", name)
		}
	}
	if v := byName["go.heap.alloc_bytes"].Value; v <= 0 {
		t.Errorf("go.heap.alloc_bytes = %d, want > 0", v)
	}
	if v := byName["go.heap.objects"].Value; v <= 0 {
		t.Errorf("go.heap.objects = %d, want > 0", v)
	}
	if v := byName["go.goroutines"].Value; v <= 0 {
		t.Errorf("go.goroutines = %d, want > 0", v)
	}
}

// TestRuntimeSamplerPauses drives the sampler directly: GC pauses that
// happen between refreshes land in the histogram, and the refresh
// throttle coalesces back-to-back reads.
func TestRuntimeSamplerPauses(t *testing.T) {
	reg := NewRegistry()
	s := &runtimeSampler{
		pauses:  reg.Histogram("test.gc.pause_seconds", DefaultGCPauseBuckets),
		cpu:     reg.Counter("test.cpu_seconds_total"),
		cpuLast: processCPUSeconds(),
	}
	s.snapshot() // baseline: observes nothing, records NumGC
	base := s.pauses.Count()

	runtime.GC()
	runtime.GC()
	s.last = time.Time{} // defeat the refresh throttle for the test
	s.snapshot()
	if got := s.pauses.Count(); got < base+2 {
		t.Errorf("pause histogram count %d after 2 GCs, want >= %d", got, base+2)
	}

	// Throttle: an immediate re-read must not re-scan the runtime.
	before := s.last
	s.snapshot()
	if !s.last.Equal(before) {
		t.Error("refresh throttle did not coalesce back-to-back snapshots")
	}
}

// TestRuntimeSamplerCPUCarry checks the fractional-seconds carry: a
// refresh seeing 1.2 more CPU seconds than the last moves the
// whole-seconds counter by exactly 1 and keeps the 0.2 remainder for
// the next refresh.
func TestRuntimeSamplerCPUCarry(t *testing.T) {
	cur := processCPUSeconds()
	if cur <= 0 {
		t.Skip("no rusage on this platform")
	}
	reg := NewRegistry()
	s := &runtimeSampler{
		pauses:  reg.Histogram("test.gc.pause_seconds", DefaultGCPauseBuckets),
		cpu:     reg.Counter("test.cpu_seconds_total"),
		cpuLast: cur - 1.2, // pretend 1.2 CPU seconds elapsed since baseline
	}
	s.updateCPU()
	if got := s.cpu.Value(); got != 1 {
		t.Errorf("cpu counter after ~1.2s of CPU = %d, want 1", got)
	}
	// The real clock advanced a hair past the synthetic 1.2s, so the
	// carry is 0.2 plus that hair — but never a whole second.
	if s.cpuCarry < 0.19 || s.cpuCarry >= 1 {
		t.Errorf("carry = %v, want ~0.2", s.cpuCarry)
	}
}
