package obs

import "time"

// This file is the continuous-profiling facility seam. The profiler
// itself lives in internal/obs/profile (it needs runtime/pprof and the
// wire-format parser); declaring the cross-package view here keeps the
// dependency arrow pointing one way — profile imports obs, never the
// reverse — while letting every layer that already holds an *Obs (the
// fleet bundler enriching a diagnostic bundle, the admin plane) read the
// profiler's latest state without importing it.

// ProfileFrame is one function's contribution in a profile table: flat
// is the value attributed to the function itself (the leaf frames),
// cum includes everything it called. In regression tables Delta carries
// the change versus the baseline window.
type ProfileFrame struct {
	Func  string `json:"func"`
	Flat  int64  `json:"flat"`
	Cum   int64  `json:"cum"`
	Delta int64  `json:"delta,omitempty"`
}

// ProfileWindow identifies one continuous-profile capture window.
type ProfileWindow struct {
	ID    int       `json:"id"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// ProfileSummary is the cross-package view of the continuous profiler's
// newest window: the rates and regression ratio the alert rules watch,
// plus the top-N tables that federate to a fleet head and land in
// diagnostic bundles. Flat/Cum units are bytes for the alloc table and
// CPU nanoseconds for the CPU table.
type ProfileSummary struct {
	Window           ProfileWindow  `json:"window"`
	AllocBytesPerSec float64        `json:"alloc_bytes_per_sec"`
	CPUBusyFrac      float64        `json:"cpu_busy_frac"`
	AllocRegression  float64        `json:"alloc_regression_ratio"`
	CPURegression    float64        `json:"cpu_regression_ratio"`
	TopCPU           []ProfileFrame `json:"top_cpu,omitempty"`
	TopAlloc         []ProfileFrame `json:"top_alloc,omitempty"`
	// TopRegressed are the frames whose per-window alloc bytes grew the
	// most versus the previous window — the attribution a firing
	// regression alert points at.
	TopRegressed []ProfileFrame `json:"top_regressed,omitempty"`
}

// ContinuousProfiler is the facility interface the profile package
// implements. ok is false until the profiler has completed at least one
// full capture window.
type ContinuousProfiler interface {
	ProfileSummary() (ProfileSummary, bool)
}

// nopProfiler is the discard profiler a nil Obs (or one without a
// profiler attached) hands out, keeping call sites branch-free like the
// other facilities.
type nopProfiler struct{}

func (nopProfiler) ProfileSummary() (ProfileSummary, bool) { return ProfileSummary{}, false }

// Profiler returns the bundle's continuous profiler, or a discard
// profiler when o is nil or none has been attached.
func (o *Obs) Profiler() ContinuousProfiler {
	if o == nil || o.Profile == nil {
		return nopProfiler{}
	}
	return o.Profile
}
