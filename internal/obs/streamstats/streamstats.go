// Package streamstats is the data-path X-ray of the Instant GridFTP
// reproduction: per-stream wire telemetry for every data connection of
// every transfer. The session/task-level planes (metrics, tsdb, events)
// can say that *a transfer* is slow; this plane says *which of its
// streams* is stalled, lossy, or starved — the per-stream analysis that
// dominates parallel-transfer behavior in practice.
//
// A Registry tracks active transfers. The data path calls Begin per
// transfer and Wrap per data connection; the returned conn counts
// cumulative bytes, time blocked in Write, and the last-progress
// timestamp. A background poller derives an EWMA throughput per stream,
// polls wire-level counters (RTT, retransmits, cwnd) — from TCP_INFO on
// real Linux TCP sockets, or from the netsim limiter/loss injector on
// simulated connections — and feeds per-stream series into the
// time-series recorder:
//
//	gridftp.stream.<label>.<n>.throughput   bytes/sec (EWMA)
//	gridftp.stream.<label>.<n>.rtt          seconds
//	gridftp.stream.<label>.<n>.retransmits  cumulative segments
//
// plus two fleet-level stall/imbalance series the alert rules watch:
//
//	gridftp.streams.stalled     streams currently past the stall window
//	gridftp.streams.imbalance   worst max/min stream-throughput ratio
//
// The poller doubles as the stall watchdog: a stream with no progress
// for the configured window raises a stream.stalled event (and, when
// AbortOnStall is set, aborts the transfer so the scheduler retries the
// file from its restart-marker checkpoint); progress or transfer end
// raises stream.recovered.
//
// Like the rest of internal/obs, a nil *Registry and a nil *Transfer are
// valid everywhere: all methods degrade to no-ops, so the data path never
// has to guard.
package streamstats

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/eventlog"
)

// SeriesPrefix is the namespace of the per-stream series.
const SeriesPrefix = "gridftp.stream."

// Fleet-level series maintained by the poller for the alert rules.
const (
	StalledSeries   = "gridftp.streams.stalled"
	ImbalanceSeries = "gridftp.streams.imbalance"
)

// WireInfo is a point-in-time snapshot of one stream's transport-level
// counters: from TCP_INFO on real sockets, from the limiter/loss injector
// on simulated ones.
type WireInfo struct {
	// RTT is the path round-trip time.
	RTT time.Duration
	// Retransmits is the cumulative count of retransmitted segments.
	Retransmits int64
	// Drops is the cumulative count of connection-level drops (aborts).
	Drops int64
	// CwndSegments is the current congestion/send window in segments.
	CwndSegments int64
}

// WireStatuser is implemented by connections that expose transport
// counters directly — netsim.Conn derives them from its shaper and loss
// model so simulated environments produce the same series real TCP does.
type WireStatuser interface {
	WireStatus() (rtt time.Duration, retransmits, drops, cwnd int64, ok bool)
}

// wireInfo extracts wire counters from a connection: a WireStatuser
// first (netsim), then a TCP_INFO poll via syscall.RawConn (Linux).
func wireInfo(c net.Conn) (WireInfo, bool) {
	if c == nil {
		return WireInfo{}, false
	}
	if ws, ok := c.(WireStatuser); ok {
		rtt, retrans, drops, cwnd, ok := ws.WireStatus()
		if ok {
			return WireInfo{RTT: rtt, Retransmits: retrans, Drops: drops, CwndSegments: cwnd}, true
		}
		return WireInfo{}, false
	}
	return sockWireInfo(c)
}

// Options configures a Registry.
type Options struct {
	// Obs receives the per-stream series (via its SeriesSink), the
	// stall/recovery events, and the gridftp.streams.* gauges.
	Obs *obs.Obs
	// Interval is the poll/watchdog cadence. Default 500ms.
	Interval time.Duration
	// Stall is the no-progress window after which a stream is flagged
	// stalled. Zero disables the watchdog (telemetry still flows).
	Stall time.Duration
	// AbortOnStall makes the watchdog abort a transfer whose stream
	// stalls, so the attempt fails fast and the scheduler retries the
	// file from its checkpoint instead of waiting out the transfer.
	AbortOnStall bool
	// Retain is how many finished transfers Health keeps for
	// /debug/streams. Default 16.
	Retain int
	// EWMAAlpha is the throughput smoothing factor in (0, 1]. Default 0.3.
	EWMAAlpha float64
}

func (o Options) interval() time.Duration {
	if o.Interval <= 0 {
		return 500 * time.Millisecond
	}
	return o.Interval
}

func (o Options) retain() int {
	if o.Retain <= 0 {
		return 16
	}
	return o.Retain
}

func (o Options) alpha() float64 {
	if o.EWMAAlpha <= 0 || o.EWMAAlpha > 1 {
		return 0.3
	}
	return o.EWMAAlpha
}

// Registry tracks the streams of all active (and recently finished)
// transfers and runs the poller/watchdog goroutine.
type Registry struct {
	opts Options

	mu     sync.Mutex
	seq    int64
	active []*Transfer
	recent []*Transfer // finished, newest last, bounded by Retain

	stalled int64 // streams currently stalled (poller-owned, read via atomic)

	stop chan struct{}
	done chan struct{}
}

// New creates a Registry and starts its poller. Close releases it.
func New(opts Options) *Registry {
	r := &Registry{
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go r.run()
	return r
}

// Close stops the poller. Active transfers keep counting bytes, but no
// further series, events, or stall checks are produced.
func (r *Registry) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	select {
	case <-r.stop:
		r.mu.Unlock()
		return
	default:
	}
	close(r.stop)
	r.mu.Unlock()
	<-r.done
}

// Stall returns the configured stall window (0 = watchdog disabled).
func (r *Registry) Stall() time.Duration {
	if r == nil {
		return 0
	}
	return r.opts.Stall
}

// Begin registers a transfer under the given label ("task-7", or a
// server-generated fallback) and verb ("retr", "stor", "get", "put").
// Safe on a nil Registry: returns a nil Transfer whose methods no-op.
func (r *Registry) Begin(label, verb string) *Transfer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.seq++
	if label == "" {
		label = fmt.Sprintf("%s-%d", verb, r.seq)
	}
	t := &Transfer{reg: r, label: label, verb: verb, started: time.Now()}
	r.active = append(r.active, t)
	r.mu.Unlock()
	return t
}

// StalledStreams returns how many streams are currently past the stall
// window.
func (r *Registry) StalledStreams() int {
	if r == nil {
		return 0
	}
	return int(atomic.LoadInt64(&r.stalled))
}

// Transfer is the stream set of one data transfer.
type Transfer struct {
	reg     *Registry
	label   string
	verb    string
	started time.Time

	mu      sync.Mutex
	streams []*Stream
	abort   func()
	doneFlg bool
	doneAt  time.Time
	err     string

	stallAborted atomic.Bool
}

// Label returns the transfer's series label.
func (t *Transfer) Label() string {
	if t == nil {
		return ""
	}
	return t.label
}

// Stream is the per-stream record: cumulative bytes, last-progress
// timestamp, time blocked inside Write, and the polled wire counters.
type Stream struct {
	idx     int
	bytes   atomic.Int64
	last    atomic.Int64 // unixnano of last byte of progress
	blocked atomic.Int64 // cumulative ns spent inside Write

	// mu guards the wire conn and the derived state below: written by
	// Wrap and the poller, read by Health snapshots.
	mu        sync.Mutex
	wire      net.Conn // conn polled for WireStatus / TCP_INFO
	prevBytes int64
	prevAt    time.Time
	ewma      float64
	stalled   bool
	wireOK    bool
	lastWire  WireInfo
}

// Wrap instruments conn as stream i of the transfer. payload is the
// connection the data blocks flow through (what gets wrapped); wire is
// the transport-level connection polled for RTT/retransmit counters —
// pass the raw conn when payload is a security wrapper, or the same conn
// when they coincide. Safe on a nil Transfer: returns payload unwrapped.
func (t *Transfer) Wrap(i int, payload, wire net.Conn) net.Conn {
	if t == nil || payload == nil {
		return payload
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	for i >= len(t.streams) {
		s := &Stream{idx: len(t.streams)}
		s.last.Store(now)
		t.streams = append(t.streams, s)
	}
	s := t.streams[i]
	t.mu.Unlock()
	s.mu.Lock()
	s.wire = wire
	s.mu.Unlock()
	sc := &streamConn{Conn: payload, s: s}
	// Capability-gated fast-path passthrough: the instrumented conn only
	// advertises vectored writes (WriteBuffers) or sendfile (io.ReaderFrom)
	// when the payload conn underneath provides them, and the forwarding
	// methods keep the byte/progress counters honest — the MODE E fast
	// path must never bypass stream telemetry.
	rf, _ := payload.(io.ReaderFrom)
	bw, _ := payload.(buffersWriter)
	switch {
	case rf != nil && bw != nil:
		return &streamStreamConn{streamConn: sc, rf: rf, bw: bw}
	case rf != nil:
		return &streamReaderFromConn{streamConn: sc, rf: rf}
	case bw != nil:
		return &streamBuffersConn{streamConn: sc, bw: bw}
	}
	return sc
}

// buffersWriter matches the vectored-write capability (xio.BuffersWriter,
// netsim.Conn.WriteBuffers) structurally, avoiding an import direction.
type buffersWriter interface {
	WriteBuffers(bufs [][]byte) (int64, error)
}

// SetAbort installs the function the stall watchdog calls (once) when a
// stream of this transfer stalls and the registry is in AbortOnStall
// mode. It should tear down the transfer's data connections.
func (t *Transfer) SetAbort(fn func()) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.abort = fn
	t.mu.Unlock()
}

// StallAborted reports whether the watchdog aborted this transfer.
func (t *Transfer) StallAborted() bool {
	return t != nil && t.stallAborted.Load()
}

// Done marks the transfer finished; err is recorded in the health table.
// The transfer moves from the active set to the bounded recent ring.
func (t *Transfer) Done(err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.doneFlg {
		t.mu.Unlock()
		return
	}
	t.doneFlg = true
	t.doneAt = time.Now()
	if err != nil {
		t.err = err.Error()
	}
	t.mu.Unlock()

	r := t.reg
	r.mu.Lock()
	labelLive := false
	for i, a := range r.active {
		if a == t {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	// Successive files of one task Begin under the same label and reuse
	// the same series names; only retire the label's timelines when no
	// active transfer is still writing them.
	for _, a := range r.active {
		if a.label == t.label {
			labelLive = true
			break
		}
	}
	r.recent = append(r.recent, t)
	if n := r.opts.retain(); len(r.recent) > n {
		r.recent = r.recent[len(r.recent)-n:]
	}
	r.mu.Unlock()
	if !labelLive {
		// Lifecycle half of the poller's series mints: tombstone
		// "gridftp.stream.<label>.*" (per-stream throughput/rtt/
		// retransmits). The recorder keeps them queryable for its
		// horizon; the next transfer under this label re-mints.
		r.opts.Obs.RetireSeries(SeriesPrefix + t.label + ".")
	}
	t.finishStreams(r.opts.Obs.EventLog())
}

// streamConn is the instrumented connection: every byte in or out bumps
// the stream's counters and refreshes its last-progress timestamp, and
// Write time is accumulated as write-block time.
type streamConn struct {
	net.Conn
	s *Stream
}

func (c *streamConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.s.bytes.Add(int64(n))
		c.s.last.Store(time.Now().UnixNano())
	}
	return n, err
}

func (c *streamConn) Write(p []byte) (int, error) {
	start := time.Now()
	n, err := c.Conn.Write(p)
	c.s.blocked.Add(int64(time.Since(start)))
	if n > 0 {
		c.s.bytes.Add(int64(n))
		c.s.last.Store(time.Now().UnixNano())
	}
	return n, err
}

// CloseWrite forwards half-close when the underlying transport supports
// it (MODE S signals EOF that way).
func (c *streamConn) CloseWrite() error {
	if hc, ok := c.Conn.(interface{ CloseWrite() error }); ok {
		return hc.CloseWrite()
	}
	return nil
}

// readFrom forwards io.ReaderFrom, accounting the moved bytes as write
// progress and the elapsed time as write-blocked time.
func (c *streamConn) readFrom(rf io.ReaderFrom, r io.Reader) (int64, error) {
	start := time.Now()
	n, err := rf.ReadFrom(r)
	c.s.blocked.Add(int64(time.Since(start)))
	if n > 0 {
		c.s.bytes.Add(n)
		c.s.last.Store(time.Now().UnixNano())
	}
	return n, err
}

// writeBuffers forwards a vectored write with full accounting.
func (c *streamConn) writeBuffers(bw buffersWriter, bufs [][]byte) (int64, error) {
	start := time.Now()
	n, err := bw.WriteBuffers(bufs)
	c.s.blocked.Add(int64(time.Since(start)))
	if n > 0 {
		c.s.bytes.Add(n)
		c.s.last.Store(time.Now().UnixNano())
	}
	return n, err
}

// streamReaderFromConn instruments a conn that supports io.ReaderFrom.
type streamReaderFromConn struct {
	*streamConn
	rf io.ReaderFrom
}

func (c *streamReaderFromConn) ReadFrom(r io.Reader) (int64, error) { return c.readFrom(c.rf, r) }

// streamBuffersConn instruments a conn that supports vectored writes.
type streamBuffersConn struct {
	*streamConn
	bw buffersWriter
}

func (c *streamBuffersConn) WriteBuffers(bufs [][]byte) (int64, error) {
	return c.writeBuffers(c.bw, bufs)
}

// streamStreamConn instruments a conn that supports both.
type streamStreamConn struct {
	*streamConn
	rf io.ReaderFrom
	bw buffersWriter
}

func (c *streamStreamConn) ReadFrom(r io.Reader) (int64, error) { return c.readFrom(c.rf, r) }
func (c *streamStreamConn) WriteBuffers(bufs [][]byte) (int64, error) {
	return c.writeBuffers(c.bw, bufs)
}

// run is the poller/watchdog loop.
func (r *Registry) run() {
	defer close(r.done)
	tick := time.NewTicker(r.opts.interval())
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-tick.C:
			r.poll(now)
		}
	}
}

// poll is one pass: refresh throughput EWMAs and wire counters, emit
// series, and run the stall watchdog.
func (r *Registry) poll(now time.Time) {
	r.mu.Lock()
	transfers := append([]*Transfer(nil), r.active...)
	r.mu.Unlock()

	o := r.opts.Obs
	sink := o.TimeSeries()
	events := o.EventLog()
	alpha := r.opts.alpha()

	var stalledCount int64
	worstRatio := 1.0
	activeStreams := 0

	for _, t := range transfers {
		t.mu.Lock()
		streams := append([]*Stream(nil), t.streams...)
		abort := t.abort
		done := t.doneFlg
		t.mu.Unlock()
		if done {
			continue
		}

		minRate, maxRate := 0.0, 0.0
		rated := 0
		var stalledStream *Stream
		for _, s := range streams {
			activeStreams++
			b := s.bytes.Load()
			s.mu.Lock()
			wc := s.wire
			s.mu.Unlock()
			wi, wiOK := wireInfo(wc)

			s.mu.Lock()
			if !s.prevAt.IsZero() {
				dt := now.Sub(s.prevAt).Seconds()
				if dt > 0 {
					inst := float64(b-s.prevBytes) / dt
					s.ewma = alpha*inst + (1-alpha)*s.ewma
				}
			}
			s.prevBytes, s.prevAt = b, now
			if wiOK {
				s.lastWire, s.wireOK = wi, true
			}
			ewma, wireOK, lastWire := s.ewma, s.wireOK, s.lastWire

			// Watchdog: no progress since the stall window ago.
			newlyStalled, recovered := false, false
			var idle time.Duration
			if r.opts.Stall > 0 {
				idle = now.Sub(time.Unix(0, s.last.Load()))
				if idle > r.opts.Stall {
					if !s.stalled {
						s.stalled = true
						newlyStalled = true
					}
				} else if s.stalled {
					s.stalled = false
					recovered = true
				}
			}
			if s.stalled {
				stalledCount++
			}
			s.mu.Unlock()

			name := fmt.Sprintf("%s%s.%d.", SeriesPrefix, t.label, s.idx)
			sink.Observe(name+"throughput", now, ewma)
			if wireOK {
				sink.Observe(name+"rtt", now, lastWire.RTT.Seconds())
				sink.Observe(name+"retransmits", now, float64(lastWire.Retransmits))
			}

			if ewma > 0 {
				if rated == 0 || ewma < minRate {
					minRate = ewma
				}
				if ewma > maxRate {
					maxRate = ewma
				}
				rated++
			}

			if newlyStalled {
				events.Append(eventlog.StreamStalled,
					"component", "streamstats",
					"transfer", t.label,
					"verb", t.verb,
					"stream", s.idx,
					"idle_ms", idle.Milliseconds(),
					"bytes", b)
				stalledStream = s
			}
			if recovered {
				events.Append(eventlog.StreamRecovered,
					"component", "streamstats",
					"transfer", t.label,
					"stream", s.idx,
					"reason", "progress")
			}
		}
		if rated >= 2 && minRate > 0 {
			if ratio := maxRate / minRate; ratio > worstRatio {
				worstRatio = ratio
			}
		}
		if stalledStream != nil && r.opts.AbortOnStall && abort != nil && !t.stallAborted.Load() {
			t.stallAborted.Store(true)
			abort()
		}
	}

	atomic.StoreInt64(&r.stalled, stalledCount)
	sink.Observe(StalledSeries, now, float64(stalledCount))
	sink.Observe(ImbalanceSeries, now, worstRatio)
	reg := o.Registry()
	reg.Gauge("gridftp.streams.stalled").Set(stalledCount)
	reg.Gauge("gridftp.streams.active").Set(int64(activeStreams))
}

// finishStreams emits recovered events for any still-stalled streams of
// a finished transfer, so every stream.stalled is eventually paired with
// a stream.recovered. The stalled *count* clears on its own: Done removes
// the transfer from the active set and the poller recomputes the gauge
// from scratch each pass.
func (t *Transfer) finishStreams(events *eventlog.Log) {
	t.mu.Lock()
	streams := append([]*Stream(nil), t.streams...)
	t.mu.Unlock()
	for _, s := range streams {
		s.mu.Lock()
		wasStalled := s.stalled
		s.stalled = false
		s.mu.Unlock()
		if wasStalled {
			events.Append(eventlog.StreamRecovered,
				"component", "streamstats",
				"transfer", t.label,
				"stream", s.idx,
				"reason", "closed")
		}
	}
}

// StreamHealth is one stream's row in the health table.
type StreamHealth struct {
	Index        int       `json:"index"`
	Bytes        int64     `json:"bytes"`
	Throughput   float64   `json:"throughput"`
	RTTMillis    float64   `json:"rtt_ms"`
	Retransmits  int64     `json:"retransmits"`
	Drops        int64     `json:"drops"`
	CwndSegments int64     `json:"cwnd_segments"`
	BlockedMs    float64   `json:"write_blocked_ms"`
	LastProgress time.Time `json:"last_progress"`
	Stalled      bool      `json:"stalled"`
}

// TransferHealth is one transfer's rows in the health table.
type TransferHealth struct {
	Label     string         `json:"label"`
	Verb      string         `json:"verb"`
	Started   time.Time      `json:"started"`
	Done      bool           `json:"done"`
	Error     string         `json:"error,omitempty"`
	Aborted   bool           `json:"stall_aborted,omitempty"`
	Imbalance float64        `json:"imbalance"`
	Streams   []StreamHealth `json:"streams"`
}

// Health snapshots every active transfer plus the retained finished ones,
// active first, each ordered oldest-first.
func (r *Registry) Health() []TransferHealth {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	transfers := append([]*Transfer(nil), r.active...)
	transfers = append(transfers, r.recent...)
	r.mu.Unlock()
	out := make([]TransferHealth, 0, len(transfers))
	for _, t := range transfers {
		out = append(out, t.health())
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Done != out[j].Done {
			return !out[i].Done
		}
		return out[i].Started.Before(out[j].Started)
	})
	return out
}

func (t *Transfer) health() TransferHealth {
	t.mu.Lock()
	th := TransferHealth{
		Label:   t.label,
		Verb:    t.verb,
		Started: t.started,
		Done:    t.doneFlg,
		Error:   t.err,
		Aborted: t.stallAborted.Load(),
	}
	streams := append([]*Stream(nil), t.streams...)
	t.mu.Unlock()
	minRate, maxRate := 0.0, 0.0
	rated := 0
	for _, s := range streams {
		s.mu.Lock()
		ewma, stalled, wireOK, lastWire := s.ewma, s.stalled, s.wireOK, s.lastWire
		s.mu.Unlock()
		sh := StreamHealth{
			Index:        s.idx,
			Bytes:        s.bytes.Load(),
			Throughput:   ewma,
			BlockedMs:    float64(s.blocked.Load()) / 1e6,
			LastProgress: time.Unix(0, s.last.Load()),
			Stalled:      stalled,
		}
		if wireOK {
			sh.RTTMillis = float64(lastWire.RTT.Microseconds()) / 1e3
			sh.Retransmits = lastWire.Retransmits
			sh.Drops = lastWire.Drops
			sh.CwndSegments = lastWire.CwndSegments
		}
		if ewma > 0 {
			if rated == 0 || ewma < minRate {
				minRate = ewma
			}
			if ewma > maxRate {
				maxRate = ewma
			}
			rated++
		}
		th.Streams = append(th.Streams, sh)
	}
	th.Imbalance = 1
	if rated >= 2 && minRate > 0 {
		th.Imbalance = maxRate / minRate
	}
	return th
}

// WireSummary aggregates a transfer set's wire evidence for the
// scheduler's per-attempt records.
type WireSummary struct {
	// Transfers is how many transfers matched the label prefix.
	Transfers int
	// Retransmits is the summed retransmit count across their streams.
	Retransmits int64
	// Imbalance is the worst max/min stream-throughput ratio observed.
	Imbalance float64
	// Stalls is how many transfers were aborted by the stall watchdog.
	Stalls int
	// RTT is the largest per-stream RTT observed (the path RTT for
	// bandwidth-delay-product sizing).
	RTT time.Duration
	// CwndSegments is the largest per-stream congestion window observed.
	CwndSegments int64
	// Throughput is the summed per-stream EWMA throughput (bytes/sec)
	// across the matched transfers' streams.
	Throughput float64
}

// WireSummary aggregates every transfer whose label starts with prefix
// (a task id matches both its "task-N" destination and "task-N-src"
// source legs). ok is false when nothing matched.
func (r *Registry) WireSummary(prefix string) (WireSummary, bool) {
	if r == nil {
		return WireSummary{}, false
	}
	var ws WireSummary
	ws.Imbalance = 1
	for _, th := range r.Health() {
		if len(th.Label) < len(prefix) || th.Label[:len(prefix)] != prefix {
			continue
		}
		ws.Transfers++
		if th.Aborted {
			ws.Stalls++
		}
		if th.Imbalance > ws.Imbalance {
			ws.Imbalance = th.Imbalance
		}
		for _, sh := range th.Streams {
			ws.Retransmits += sh.Retransmits
			ws.Throughput += sh.Throughput
			if rtt := time.Duration(sh.RTTMillis * float64(time.Millisecond)); rtt > ws.RTT {
				ws.RTT = rtt
			}
			if sh.CwndSegments > ws.CwndSegments {
				ws.CwndSegments = sh.CwndSegments
			}
		}
	}
	return ws, ws.Transfers > 0
}
