package streamstats

import (
	"net"
	"sync"

	"gridftp.dev/instant/internal/xio"
)

// Driver is the XIO face of the stream-telemetry plane: an
// instrumentation driver that can sit anywhere in a data channel stack
// (e.g. [tcp, streamstats, tls]) and registers every connection it wraps
// as one stream of a shared Transfer. GridFTP's DTP uses Transfer.Wrap
// directly because it knows each connection's stream index; generic
// stacks use this driver and get accept/dial-order indexes.
type Driver struct {
	// Registry receives the transfer; nil disables instrumentation
	// (connections pass through unwrapped).
	Registry *Registry
	// Label names the transfer the wrapped connections belong to; one
	// is generated when empty.
	Label string

	mu       sync.Mutex
	transfer *Transfer
	next     int
}

// Name implements xio.Driver.
func (d *Driver) Name() string { return "streamstats" }

// WrapClient implements xio.Driver.
func (d *Driver) WrapClient(conn net.Conn) (net.Conn, error) { return d.wrap(conn), nil }

// WrapServer implements xio.Driver.
func (d *Driver) WrapServer(conn net.Conn) (net.Conn, error) { return d.wrap(conn), nil }

func (d *Driver) wrap(conn net.Conn) net.Conn {
	if d.Registry == nil {
		return conn
	}
	d.mu.Lock()
	if d.transfer == nil {
		d.transfer = d.Registry.Begin(d.Label, "xio")
	}
	t, i := d.transfer, d.next
	d.next++
	d.mu.Unlock()
	return t.Wrap(i, conn, conn)
}

// Transfer returns the driver's transfer record (nil until the first
// connection is wrapped), so callers can mark it Done.
func (d *Driver) Transfer() *Transfer {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.transfer
}

// Interface conformance.
var _ xio.Driver = (*Driver)(nil)
