//go:build linux

package streamstats

import (
	"net"
	"syscall"
	"time"
	"unsafe"
)

// sockWireInfo polls TCP_INFO on a real Linux TCP socket through its
// syscall.RawConn, mapping the kernel's view of the connection — smoothed
// RTT, total retransmitted segments, and the congestion window — into a
// WireInfo. Non-TCP connections (and sockets whose getsockopt fails)
// report ok=false so the caller just skips the wire columns.
func sockWireInfo(c net.Conn) (WireInfo, bool) {
	sc, ok := c.(syscall.Conn)
	if !ok {
		return WireInfo{}, false
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return WireInfo{}, false
	}
	var ti syscall.TCPInfo
	got := false
	ctlErr := raw.Control(func(fd uintptr) {
		size := uint32(unsafe.Sizeof(ti))
		_, _, errno := syscall.Syscall6(syscall.SYS_GETSOCKOPT, fd,
			uintptr(syscall.IPPROTO_TCP), uintptr(syscall.TCP_INFO),
			uintptr(unsafe.Pointer(&ti)), uintptr(unsafe.Pointer(&size)), 0)
		got = errno == 0
	})
	if ctlErr != nil || !got {
		return WireInfo{}, false
	}
	return WireInfo{
		RTT:          time.Duration(ti.Rtt) * time.Microsecond,
		Retransmits:  int64(ti.Total_retrans),
		CwndSegments: int64(ti.Snd_cwnd),
	}, true
}
