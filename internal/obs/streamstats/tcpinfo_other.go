//go:build !linux

package streamstats

import "net"

// sockWireInfo is the non-Linux fallback: no TCP_INFO, so real sockets
// produce byte/throughput telemetry but no wire columns.
func sockWireInfo(net.Conn) (WireInfo, bool) {
	return WireInfo{}, false
}
