package streamstats

import (
	"fmt"
	"strings"
)

// FormatTable renders a health snapshot as the aligned text table shown
// by `benchreport -dashboard` and written as the CI stream-health
// artifact: one header row per transfer, one row per stream.
func FormatTable(transfers []TransferHealth) string {
	if len(transfers) == 0 {
		return "(no transfers tracked)\n"
	}
	var b strings.Builder
	for _, th := range transfers {
		state := "active"
		switch {
		case th.Aborted:
			state = "stall-aborted"
		case th.Done && th.Error != "":
			state = "failed"
		case th.Done:
			state = "done"
		}
		fmt.Fprintf(&b, "%s (%s, %s", th.Label, th.Verb, state)
		if th.Imbalance > 1 {
			fmt.Fprintf(&b, ", imbalance %.1fx", th.Imbalance)
		}
		b.WriteString(")\n")
		if th.Error != "" {
			fmt.Fprintf(&b, "  error: %s\n", th.Error)
		}
		fmt.Fprintf(&b, "  %3s %12s %12s %9s %8s %6s %10s %s\n",
			"str", "bytes", "rate", "rtt", "retrans", "cwnd", "blocked", "state")
		for _, sh := range th.Streams {
			state := "ok"
			if sh.Stalled {
				state = "STALLED"
			}
			fmt.Fprintf(&b, "  %3d %12d %10s/s %7.1fms %8d %6d %8.0fms %s\n",
				sh.Index, sh.Bytes, fmtRate(sh.Throughput), sh.RTTMillis,
				sh.Retransmits, sh.CwndSegments, sh.BlockedMs, state)
		}
	}
	return b.String()
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f GB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2f MB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f KB", v/1e3)
	}
	return fmt.Sprintf("%.0f B", v)
}
