package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe collection of named metrics. Metric
// handles are created on first use and cached; hot paths (per-block byte
// counting) touch only an atomic after the first lookup.
//
// Names are dotted paths ("gridftp.server.bytes_in"); an optional
// instance label is appended in braces ("netsim.link.bytes{siteA|siteB}")
// so per-link / per-endpoint series stay separate without a full label
// system.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	funcs      map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		funcs:      make(map[string]func() int64),
	}
}

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (queue depth, active sessions).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max raises the gauge to v if v is greater (high-watermark tracking).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets. Bounds are upper
// bucket edges (sorted ascending); observations above the last bound land
// in the implicit +Inf bucket. All updates are atomic per bucket, so
// concurrent Observe calls never lock.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
	// exemplars holds the most recent traced observation per bucket
	// (parallel to buckets); nil pointers mean no exemplar yet.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one recent histogram observation to the distributed
// trace it was recorded under, so an aggregate view (a fleet p99, a
// firing alert) can point at a concrete representative trace. A zero
// TraceID means "no exemplar".
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
}

// DefaultDurationBuckets suits millisecond-scale simulated operations
// (values observed in seconds).
var DefaultDurationBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// DefaultSizeBuckets suits transfer sizes in bytes.
var DefaultSizeBuckets = []float64{1 << 10, 32 << 10, 1 << 20, 8 << 20, 64 << 20, 1 << 30}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds:    bs,
		buckets:   make([]atomic.Int64, len(bs)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.ObserveExemplar(v, "")
}

// ObserveExemplar records one value and, when traceID is non-empty,
// remembers it as the bucket's exemplar — the trace id of a recent
// observation that landed in that bucket. Hot paths that already hold a
// span call this instead of Observe so fleet aggregates and alerts can
// link to a representative trace.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Exemplars returns the per-bucket exemplars, parallel to Buckets
// (including the +Inf bucket). Buckets that never saw a traced
// observation yield the zero Exemplar.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	out := make([]Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			out[i] = *e
		}
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns (upper bound, cumulative count) pairs including the
// +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []int64) {
	if h == nil {
		return nil, nil
	}
	bounds := append(append([]float64(nil), h.bounds...), math.Inf(1))
	counts := make([]int64, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		counts[i] = cum
	}
	return bounds, counts
}

// Quantile estimates the q-quantile (0..1) of the observed distribution
// by linear interpolation inside the bucket the rank falls in — the same
// estimate Prometheus's histogram_quantile computes. An empty (or nil)
// histogram returns the defined sentinel 0 rather than NaN, so quantiles
// can feed JSON encoders, the exposition format, and alert rules without
// a NaN guard at every consumer; the highest finite bound is returned
// when the rank lands in the +Inf bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	bounds, counts := h.Buckets()
	return QuantileFromBuckets(bounds, counts, q)
}

// QuantileFromBuckets interpolates the q-quantile from cumulative bucket
// data (bounds ascending, the last typically +Inf; counts cumulative,
// parallel to bounds). It is the shared estimator behind
// Histogram.Quantile and the exposition/scrape layers. Malformed input
// and a zero observation count return the sentinel 0, never NaN.
func QuantileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	if len(bounds) == 0 || len(bounds) != len(counts) {
		return 0
	}
	total := counts[len(counts)-1]
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	i := 0
	for i < len(counts)-1 && float64(counts[i]) < rank {
		i++
	}
	if math.IsInf(bounds[i], 1) {
		// Rank lands above every finite bound: the best defensible point
		// estimate is the highest finite bound (Prometheus convention).
		if i == 0 {
			return 0
		}
		return bounds[i-1]
	}
	lower, prev := 0.0, int64(0)
	if i > 0 {
		lower = bounds[i-1]
		prev = counts[i-1]
	}
	inBucket := counts[i] - prev
	if inBucket <= 0 {
		return bounds[i]
	}
	return lower + (bounds[i]-lower)*(rank-float64(prev))/float64(inBucket)
}

// HistogramSnapshot is the full state of one histogram: cumulative
// buckets (including +Inf) plus the interpolated p50/p90/p99. The
// quantiles are zero (not NaN) for an empty histogram so snapshots stay
// JSON-encodable.
type HistogramSnapshot struct {
	Name   string
	Bounds []float64 // ascending; last is +Inf
	Counts []int64   // cumulative, parallel to Bounds
	Count  int64
	Sum    float64
	P50    float64
	P90    float64
	P99    float64
	// Exemplars is parallel to Bounds; a zero TraceID means the bucket
	// has no exemplar. Nil when the snapshot came from a source without
	// exemplar support.
	Exemplars []Exemplar
}

// HistogramSnapshots returns every histogram's full state, sorted by
// name. Counters and gauges are covered by Snapshot; this is the
// bucket-level view the exposition layer needs.
func (r *Registry) HistogramSnapshots() []HistogramSnapshot {
	r.mu.Lock()
	hs := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hs[name] = h
	}
	r.mu.Unlock()
	out := make([]HistogramSnapshot, 0, len(hs))
	for name, h := range hs {
		bounds, counts := h.Buckets()
		snap := HistogramSnapshot{
			Name: name, Bounds: bounds, Counts: counts,
			Count: h.Count(), Sum: h.Sum(), Exemplars: h.Exemplars(),
		}
		if snap.Count > 0 {
			snap.P50 = QuantileFromBuckets(bounds, counts, 0.50)
			snap.P90 = QuantileFromBuckets(bounds, counts, 0.90)
			snap.P99 = QuantileFromBuckets(bounds, counts, 0.99)
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Name composes a metric name with an instance label, e.g.
// Name("netsim.link.bytes", "siteA|siteB").
func Name(base, instance string) string {
	if instance == "" {
		return base
	}
	return base + "{" + instance + "}"
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. The bounds
// of the first creation win; later calls with different bounds get the
// existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — the mechanism behind derived series like process.uptime_seconds
// that have no natural Set() call site. fn must be safe for concurrent
// use and is called outside the registry lock. Re-registering a name
// replaces the function; the name must not collide with a regular
// counter/gauge/histogram or both would be exported.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.funcs == nil {
		r.funcs = make(map[string]func() int64)
	}
	r.funcs[name] = fn
}

// Metric is one exported sample in a snapshot.
type Metric struct {
	Name string
	Kind string // "counter", "gauge", "histogram"
	// Value carries the counter/gauge value, or the histogram count.
	Value int64
	// Sum is the histogram value sum (zero for counters/gauges).
	Sum float64
	// P50/P90/P99 are interpolated quantile estimates, set for histograms
	// with at least one observation (zero otherwise, so snapshots stay
	// JSON-encodable).
	P50, P90, P99 float64
}

// Snapshot returns all metrics sorted by name.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	r.mu.Unlock()
	// Gauge functions run outside the lock so they may themselves read
	// metrics without deadlocking.
	for name, fn := range funcs {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: fn()})
	}
	for name, h := range hists {
		m := Metric{Name: name, Kind: "histogram", Value: h.Count(), Sum: h.Sum()}
		if m.Value > 0 {
			bounds, counts := h.Buckets()
			m.P50 = QuantileFromBuckets(bounds, counts, 0.50)
			m.P90 = QuantileFromBuckets(bounds, counts, 0.90)
			m.P99 = QuantileFromBuckets(bounds, counts, 0.99)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteMetrics renders the snapshot in the text export format:
//
//	<kind> <name> <value> [<sum> [<p50> <p90> <p99>]]
//
// one metric per line, sorted by name. Histograms with observations carry
// their interpolated quantiles; the extra columns are optional so older
// dumps still parse. cmd/benchreport consumes this via ParseSnapshot.
func (r *Registry) WriteMetrics(w io.Writer) error {
	for _, m := range r.Snapshot() {
		var err error
		switch {
		case m.Kind == "histogram" && m.Value > 0:
			_, err = fmt.Fprintf(w, "%s %s %d %g %g %g %g\n",
				m.Kind, m.Name, m.Value, m.Sum, m.P50, m.P90, m.P99)
		case m.Kind == "histogram":
			_, err = fmt.Fprintf(w, "%s %s %d %g\n", m.Kind, m.Name, m.Value, m.Sum)
		default:
			_, err = fmt.Fprintf(w, "%s %s %d\n", m.Kind, m.Name, m.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ParseSnapshot reads the WriteMetrics text format back into metrics.
// Blank lines and lines starting with '#' are skipped; a malformed line
// is an error.
func ParseSnapshot(r io.Reader) ([]Metric, error) {
	var out []Metric
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			return nil, fmt.Errorf("obs: malformed metric line %q", line)
		}
		v, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad value in %q: %v", line, err)
		}
		m := Metric{Kind: f[0], Name: f[1], Value: v}
		if len(f) >= 4 {
			if m.Sum, err = strconv.ParseFloat(f[3], 64); err != nil {
				return nil, fmt.Errorf("obs: bad sum in %q: %v", line, err)
			}
		}
		if len(f) >= 7 {
			qs := [3]*float64{&m.P50, &m.P90, &m.P99}
			for i, q := range qs {
				if *q, err = strconv.ParseFloat(f[4+i], 64); err != nil {
					return nil, fmt.Errorf("obs: bad quantile in %q: %v", line, err)
				}
			}
		}
		switch m.Kind {
		case "counter", "gauge", "histogram":
		default:
			return nil, fmt.Errorf("obs: unknown metric kind in %q", line)
		}
		out = append(out, m)
	}
	return out, sc.Err()
}
