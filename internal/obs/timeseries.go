package obs

import "time"

// SeriesSink receives explicit time-series observations: named samples
// with their own timestamps, as opposed to the registry's point-in-time
// counters. The in-memory flight recorder (internal/obs/tsdb) implements
// it; declaring the interface here keeps the dependency arrow pointing
// one way (tsdb imports obs, never the reverse) while letting every
// layer that already holds an *Obs feed live timelines — the transfer
// scheduler's per-worker throughput, the GridFTP client's per-stripe
// PERF-marker progress — without importing the recorder.
type SeriesSink interface {
	// Observe records value v for the named series at time t. Out-of-order
	// timestamps are legal (PERF markers carry sender-side clocks);
	// implementations must tolerate them.
	Observe(series string, t time.Time, v float64)
}

// nopSeries is the discard sink a nil Obs (or one without a recorder)
// hands out, keeping call sites branch-free like the other facilities.
type nopSeries struct{}

func (nopSeries) Observe(string, time.Time, float64) {}

// TimeSeries returns the bundle's explicit-observation sink, or a discard
// sink when o is nil or no recorder has been attached.
func (o *Obs) TimeSeries() SeriesSink {
	if o == nil || o.Series == nil {
		return nopSeries{}
	}
	return o.Series
}

// SeriesRetirer is the optional lifecycle half of a SeriesSink: sinks
// that govern series memory (internal/obs/tsdb) implement it so mint
// sites can hand back what they minted. Declared here, like SeriesSink,
// to keep the dependency arrow pointing at obs — the transfer scheduler
// and streamstats retire task/stream timelines through this interface
// without importing the recorder.
type SeriesRetirer interface {
	// RetireSeries tombstones every series whose name matches prefix
	// (exact or name-prefix) and returns how many it tombstoned.
	// Retired series stay queryable for the sink's grace horizon, then
	// their memory is reclaimed; a fresh Observe re-mints.
	RetireSeries(prefix string) int
}

// RetireSeries retires every series under prefix when the attached sink
// supports lifecycle governance; it is a no-op (returning 0) on a nil
// bundle, a missing sink, or a sink without a lifecycle. Producers call
// it at teardown mirroring the TimeSeries().Observe calls that minted
// the series.
func (o *Obs) RetireSeries(prefix string) int {
	if o == nil || o.Series == nil {
		return 0
	}
	if rt, ok := o.Series.(SeriesRetirer); ok {
		return rt.RetireSeries(prefix)
	}
	return 0
}

// processStart anchors the process.* metrics: one value per process, set
// at init so every registry that registers the process metrics reports
// the same start time.
var processStart = time.Now()

// registerProcessMetrics adds the process identity gauges every exported
// registry should carry: the Unix start time (the Prometheus
// process_start_time_seconds convention) and a live uptime computed at
// snapshot time. Both render in the text dump and in the Prometheus
// exposition because each goes through Registry.Snapshot.
func registerProcessMetrics(r *Registry) {
	r.GaugeFunc("process.start_time_seconds", func() int64 { return processStart.Unix() })
	r.GaugeFunc("process.uptime_seconds", func() int64 {
		return int64(time.Since(processStart).Seconds())
	})
}
