package expfmt

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"gridftp.dev/instant/internal/obs"
)

func TestSanitizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"gridftp.server.bytes_in", "gridftp_server_bytes_in"},
		{"already_fine:colon", "already_fine:colon"},
		{"9lives", "_9lives"},
		{"with-dash and space", "with_dash_and_space"},
		{"", "_"},
		{"a.b{c}", "a_b_c_"}, // instances are split off before sanitizing
	}
	for _, c := range cases {
		if got := SanitizeName(c.in); got != c.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteTextHistogram(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("gridftp.server.sessions").Add(3)
	r.Gauge(obs.Name("netsim.link.bytes", "siteA|siteB")).Set(42)
	h := r.Histogram("gridftp.server.command_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := WriteText(&b, r); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	for _, want := range []string{
		"# TYPE gridftp_server_sessions counter",
		"gridftp_server_sessions 3",
		"# TYPE netsim_link_bytes gauge",
		`netsim_link_bytes{instance="siteA|siteB"} 42`,
		"# TYPE gridftp_server_command_seconds histogram",
		`gridftp_server_command_seconds_bucket{le="+Inf"} 5`,
		"gridftp_server_command_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	// Bucket series must be cumulative (monotone non-decreasing) and end
	// at the total count in +Inf.
	var last int64 = -1
	buckets := 0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "gridftp_server_command_seconds_bucket") {
			continue
		}
		buckets++
		_, _, v, _, err := parseSample(line)
		if err != nil {
			t.Fatalf("parseSample(%q): %v", line, err)
		}
		if int64(v) < last {
			t.Errorf("bucket counts not cumulative: %d after %d in %q", int64(v), last, line)
		}
		last = int64(v)
	}
	if buckets != 4 { // 3 finite bounds + the +Inf bucket
		t.Errorf("got %d bucket lines, want 4", buckets)
	}
	if last != 5 {
		t.Errorf("+Inf bucket = %d, want total count 5", last)
	}
}

func TestTypeHeadersContiguous(t *testing.T) {
	// "a.b2" sorts lexically between "a.b" and "a.b{x}"; the exposition
	// must still keep both a_b series under one TYPE header.
	r := obs.NewRegistry()
	r.Counter("a.b").Inc()
	r.Counter("a.b2").Inc()
	r.Counter(obs.Name("a.b", "x")).Inc()
	var b strings.Builder
	if err := WriteText(&b, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	seen := make(map[string]bool)
	current := ""
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if seen[name] {
				t.Fatalf("TYPE header for %s repeated — series not contiguous:\n%s", name, b.String())
			}
			seen[name] = true
			current = name
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name != current {
			t.Errorf("sample %q under TYPE header %q", line, current)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Degenerate inputs return the defined sentinel 0 — never NaN, which
	// would leak into JSON encoders and the exposition format.
	if v := obs.QuantileFromBuckets(nil, nil, 0.5); v != 0 {
		t.Errorf("empty buckets: got %v, want 0", v)
	}
	// A histogram with no observations has all-zero cumulative counts.
	if v := obs.QuantileFromBuckets([]float64{1, math.Inf(1)}, []int64{0, 0}, 0.5); v != 0 {
		t.Errorf("zero counts: got %v, want 0", v)
	}
	// Single (+Inf-only) bucket: no finite bound to interpolate against.
	if v := obs.QuantileFromBuckets([]float64{math.Inf(1)}, []int64{7}, 0.5); v != 0 {
		t.Errorf("+Inf-only bucket: got %v, want 0", v)
	}
	// Single finite bucket: interpolate within [0, bound].
	got := obs.QuantileFromBuckets([]float64{2, math.Inf(1)}, []int64{4, 4}, 0.5)
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("single finite bucket p50 = %v, want 1.0", got)
	}
	// Rank in the +Inf bucket clamps to the highest finite bound.
	got = obs.QuantileFromBuckets([]float64{1, math.Inf(1)}, []int64{1, 10}, 0.99)
	if got != 1 {
		t.Errorf("+Inf-bucket rank = %v, want 1 (highest finite bound)", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(1.5) // all ten land in the (1,2] bucket
	}
	// rank(p50)=5 of 10 in-bucket → 1 + (2-1)*5/10 = 1.5
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 = %v, want 1.5", got)
	}
	if got := h.Quantile(1.0); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("p100 = %v, want 2.0 (bucket upper edge)", got)
	}
}

func TestRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("transfer.tasks_total").Add(7)
	r.Gauge("gridftp.server.active_sessions").Set(2)
	r.Counter(obs.Name("usage.packets", "siteA")).Add(9)
	h := r.Histogram("gridftp.server.command_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := WriteText(&b, r); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	byName := make(map[string]obs.Metric)
	for _, m := range parsed {
		byName[m.Name] = m
	}
	check := func(name, kind string, value int64) {
		t.Helper()
		m, ok := byName[name]
		if !ok {
			t.Fatalf("metric %q missing after round trip (have %v)", name, parsed)
		}
		if m.Kind != kind || m.Value != value {
			t.Errorf("%s = {%s %d}, want {%s %d}", name, m.Kind, m.Value, kind, value)
		}
	}
	check("transfer_tasks_total", "counter", 7)
	check("gridftp_server_active_sessions", "gauge", 2)
	check(obs.Name("usage_packets", "siteA"), "counter", 9)
	check("gridftp_server_command_seconds", "histogram", 3)
	hm := byName["gridftp_server_command_seconds"]
	if math.Abs(hm.Sum-0.555) > 1e-9 {
		t.Errorf("histogram sum = %v, want 0.555", hm.Sum)
	}
	if hm.P50 <= 0 || hm.P90 <= 0 || hm.P99 <= 0 {
		t.Errorf("histogram quantiles not recomputed: %+v", hm)
	}
}

func TestExemplarRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("transfer.seconds", []float64{0.1, 1, 10})
	h.ObserveExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveExemplar(5.0, "00f067aa0ba902b7aabbccddeeff0011")
	h.Observe(0.5) // untraced: bucket keeps no exemplar

	var b strings.Builder
	if err := WriteText(&b, r); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.05`) {
		t.Fatalf("exemplar not written:\n%s", text)
	}

	snap, err := ParseTextSnapshot(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseTextSnapshot: %v", err)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v, want 1", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.Count != 3 || len(hs.Bounds) != 4 || len(hs.Exemplars) != 4 {
		t.Fatalf("parsed histogram shape wrong: %+v", hs)
	}
	// Bucket 0 holds 0.05's exemplar, bucket 2 (1,10] holds 5.0's,
	// bucket 1 has none (only an untraced observation landed there).
	if hs.Exemplars[0].TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || hs.Exemplars[0].Value != 0.05 {
		t.Errorf("bucket 0 exemplar = %+v", hs.Exemplars[0])
	}
	if hs.Exemplars[2].TraceID != "00f067aa0ba902b7aabbccddeeff0011" {
		t.Errorf("bucket 2 exemplar = %+v", hs.Exemplars[2])
	}
	if hs.Exemplars[1].TraceID != "" {
		t.Errorf("bucket 1 should have no exemplar, got %+v", hs.Exemplars[1])
	}
	if hs.Exemplars[0].Time.IsZero() {
		t.Errorf("exemplar timestamp not round-tripped")
	}

	// A plain ParseText consumer sees the same totals and ignores
	// exemplars entirely.
	metrics, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText with exemplars: %v", err)
	}
	if len(metrics) != 1 || metrics[0].Value != 3 {
		t.Errorf("ParseText = %+v, want one histogram with count 3", metrics)
	}
}

func TestParseSampleExemplarWithoutLabels(t *testing.T) {
	// An unlabeled sample followed by an exemplar must not mistake the
	// exemplar's brace block for a label set.
	name, labels, v, ex, err := parseSample(`foo_total 5 # {trace_id="abcd"} 0.3 1712000000.250`)
	if err != nil {
		t.Fatal(err)
	}
	if name != "foo_total" || len(labels) != 0 || v != 5 {
		t.Errorf("parsed %q %v %v", name, labels, v)
	}
	if ex == nil || ex.TraceID != "abcd" || ex.Value != 0.3 || ex.Time.IsZero() {
		t.Errorf("exemplar = %+v", ex)
	}
	// Malformed exemplars are dropped, never fatal.
	_, _, _, ex, err = parseSample(`bar_total 2 # {oops} nope`)
	if err != nil || ex != nil {
		t.Errorf("malformed exemplar: ex=%+v err=%v", ex, err)
	}
}

func TestWriteJSON(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("c").Inc()
	r.Histogram("h", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := WriteJSON(&b, r); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Histograms []struct {
			Name    string  `json:"name"`
			Count   int64   `json:"count"`
			P50     float64 `json:"p50"`
			Buckets []struct {
				Le    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(out.Counters) != 1 || out.Counters[0].Name != "c" || out.Counters[0].Value != 1 {
		t.Errorf("counters = %+v", out.Counters)
	}
	if len(out.Histograms) != 1 || out.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", out.Histograms)
	}
	hh := out.Histograms[0]
	if hh.P50 <= 0 || hh.P50 > 1 {
		t.Errorf("p50 = %v, want in (0,1]", hh.P50)
	}
	if len(hh.Buckets) != 2 || hh.Buckets[1].Le != "+Inf" {
		t.Errorf("buckets = %+v, want finite + +Inf", hh.Buckets)
	}
}
