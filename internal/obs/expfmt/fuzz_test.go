package expfmt

import (
	"strings"
	"testing"
)

// FuzzParseText exercises the exposition parser on arbitrary input
// (ROADMAP item 5). The parser must never panic or hang: malformed
// input yields an error, and anything it accepts must survive a
// write→reparse cycle without crashing.
func FuzzParseText(f *testing.F) {
	f.Add("# TYPE a counter\na 1\n")
	f.Add("# TYPE h histogram\nh_bucket{le=\"0.5\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.7\nh_count 2\n")
	f.Add("m{instance=\"siteA\"} 42\n")
	f.Add("m{a=\"x\",b=\"y\"} 3 1712000000\n")
	f.Add("h_bucket{le=\"1\"} 4 # {trace_id=\"abcd\"} 0.3 1712000000.250\n")
	f.Add("foo_total 5 # {trace_id=\"abcd\"} 0.3\n")
	f.Add("weird{le=\"nan\"} NaN\n")
	f.Add("# HELP x\n# TYPE x histogram\nx_bucket{le=\"+Inf\"} 9e99\nx_count 9e99\n")
	f.Add("a{b=\"c\\\"d\\n\"} 1\n")
	f.Add("{} 1\n")
	f.Add("a{b=\"unterminated\n")
	f.Add("a 1 # {trace_id=\"t\"} inf -1e300\n")

	f.Fuzz(func(t *testing.T, text string) {
		snap, err := ParseTextSnapshot(strings.NewReader(text))
		if err != nil {
			return
		}
		// Accepted input must re-serialize and reparse cleanly.
		var b strings.Builder
		if werr := WriteSnapshot(&b, snap); werr != nil {
			t.Fatalf("WriteSnapshot on accepted input: %v", werr)
		}
		if _, rerr := ParseText(strings.NewReader(b.String())); rerr != nil {
			t.Fatalf("reparse of own output failed: %v\ninput: %q\noutput: %q", rerr, text, b.String())
		}
	})
}
