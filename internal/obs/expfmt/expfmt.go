// Package expfmt renders an obs.Registry in wire formats external
// consumers understand: the Prometheus text exposition format (counters,
// gauges, and histograms with cumulative _bucket/_sum/_count series and
// the +Inf bucket) and a JSON form carrying the same data plus the
// interpolated p50/p90/p99 estimates. ParseText reads the Prometheus
// format back, which is what lets benchreport scrape a live /metrics
// endpoint instead of a dump file.
//
// Registry names are dotted paths with an optional brace-delimited
// instance ("netsim.link.bytes{siteA|siteB}"); the exposition maps dots
// (and any other character outside [a-zA-Z0-9_:]) to underscores and the
// instance to an instance="..." label. An instance containing '='
// ("outcome=ok", or several pairs comma-separated) is treated as named
// label pairs instead, so registries can emit dimensioned series like
// gridftp_server_command_seconds_bucket{outcome="ok",le="1"}.
//
// Histogram bucket samples may carry a trace exemplar in the
// OpenMetrics style:
//
//	name_bucket{le="0.5"} 42 # {trace_id="4bf9..."} 0.31 1712000000.250
//
// i.e. " # " followed by a label set holding the trace id, the exemplar
// observation value, and an optional unix-seconds timestamp.
// WriteSnapshot emits exemplars for buckets that have one;
// ParseTextSnapshot reads them back; plain ParseText (and any standard
// Prometheus scraper) ignores them.
package expfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"gridftp.dev/instant/internal/obs"
)

// TextContentType is the Content-Type of the Prometheus text format.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// SanitizeName maps a registry metric name (without its instance part)
// onto the Prometheus name charset: every character outside
// [a-zA-Z0-9_:] becomes '_', and a leading digit gets a '_' prefix.
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// CanonicalName maps a registry name onto the form it has after a round
// trip through the text exposition: the base sanitized onto the
// Prometheus charset, the brace-delimited instance (if any) preserved.
// Consumers that mix in-process snapshots with parsed wire snapshots
// (the fleet federation layer) canonicalize through this so "a.b" and
// its wire form "a_b" name the same series.
func CanonicalName(name string) string {
	base, inst := splitInstance(name)
	s := SanitizeName(base)
	if inst == "" {
		return s
	}
	return s + "{" + inst + "}"
}

// splitInstance separates "base{inst}" into base and instance.
func splitInstance(name string) (base, instance string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatLe renders a bucket upper bound ("+Inf" for the infinite bucket).
func formatLe(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

type series struct {
	instance string
	value    int64
}

// groupSeries buckets snapshot metrics of one kind by sanitized base
// name, sorted for stable output. Grouping matters: the format requires
// all samples of one metric name to be contiguous under its TYPE header,
// and lexical registry order does not guarantee that ("a.b2" sorts
// between "a.b" and "a.b{x}").
func groupSeries(metrics []obs.Metric, kind string) (names []string, groups map[string][]series) {
	groups = make(map[string][]series)
	for _, m := range metrics {
		if m.Kind != kind {
			continue
		}
		base, inst := splitInstance(m.Name)
		name := SanitizeName(base)
		groups[name] = append(groups[name], series{instance: inst, value: m.Value})
	}
	names = make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
		sort.Slice(groups[name], func(i, j int) bool {
			return groups[name][i].instance < groups[name][j].instance
		})
	}
	sort.Strings(names)
	return names, groups
}

// labelPairs renders the registry instance part as exposition label
// pairs: a plain instance becomes instance="...", while "k=v" content
// (comma-separated for several) becomes named labels.
func labelPairs(instance string) []string {
	if instance == "" {
		return nil
	}
	if !strings.Contains(instance, "=") {
		return []string{fmt.Sprintf(`instance="%s"`, escapeLabel(instance))}
	}
	parts := strings.Split(instance, ",")
	out := make([]string, 0, len(parts))
	for _, kv := range parts {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			k, v = "instance", kv
		}
		out = append(out, fmt.Sprintf(`%s="%s"`, SanitizeName(k), escapeLabel(v)))
	}
	return out
}

func labelPair(instance string) string {
	pairs := labelPairs(instance)
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// Snapshot is the full-fidelity state of one registry (or of a merged
// fleet aggregate): counters and gauges as flat metrics, histograms at
// bucket level with their exemplars. It is the unit the federation
// layer moves — WriteSnapshot renders it, ParseTextSnapshot reads it
// back with nothing lost.
type Snapshot struct {
	Metrics    []obs.Metric            // counters and gauges ("histogram"-kind entries are ignored)
	Histograms []obs.HistogramSnapshot // bucket-level state, exemplars included
}

// SnapshotRegistry captures reg as a Snapshot.
func SnapshotRegistry(reg *obs.Registry) Snapshot {
	var plain []obs.Metric
	for _, m := range reg.Snapshot() {
		if m.Kind != "histogram" {
			plain = append(plain, m)
		}
	}
	return Snapshot{Metrics: plain, Histograms: reg.HistogramSnapshots()}
}

// WriteText renders the registry in the Prometheus text exposition
// format: one "# TYPE" header per metric name, counters and gauges as
// single samples, histograms as cumulative _bucket series (ending in
// le="+Inf") plus _sum and _count.
func WriteText(w io.Writer, r *obs.Registry) error {
	return WriteSnapshot(w, SnapshotRegistry(r))
}

// exemplarSuffix renders a bucket exemplar in the OpenMetrics style, or
// "" when the bucket has none.
func exemplarSuffix(e obs.Exemplar) string {
	if e.TraceID == "" {
		return ""
	}
	s := fmt.Sprintf(` # {trace_id="%s"} %s`,
		escapeLabel(e.TraceID), strconv.FormatFloat(e.Value, 'g', -1, 64))
	if !e.Time.IsZero() {
		s += " " + strconv.FormatFloat(float64(e.Time.UnixNano())/1e9, 'f', 3, 64)
	}
	return s
}

// WriteSnapshot renders a snapshot in the Prometheus text exposition
// format, bucket exemplars included.
func WriteSnapshot(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, kind := range []string{"counter", "gauge"} {
		names, groups := groupSeries(snap.Metrics, kind)
		for _, name := range names {
			fmt.Fprintf(bw, "# TYPE %s %s\n", name, kind)
			for _, s := range groups[name] {
				fmt.Fprintf(bw, "%s%s %d\n", name, labelPair(s.instance), s.value)
			}
		}
	}
	byName := make(map[string][]obs.HistogramSnapshot)
	var names []string
	for _, h := range snap.Histograms {
		base, inst := splitInstance(h.Name)
		name := SanitizeName(base)
		if _, ok := byName[name]; !ok {
			names = append(names, name)
		}
		h.Name = inst // reuse the field to carry the instance
		byName[name] = append(byName[name], h)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		sort.Slice(group, func(i, j int) bool { return group[i].Name < group[j].Name })
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		for _, h := range group {
			for i, b := range h.Bounds {
				pairs := append(labelPairs(h.Name), fmt.Sprintf(`le="%s"`, formatLe(b)))
				ex := ""
				if i < len(h.Exemplars) {
					ex = exemplarSuffix(h.Exemplars[i])
				}
				fmt.Fprintf(bw, "%s_bucket{%s} %d%s\n", name, strings.Join(pairs, ","), h.Counts[i], ex)
			}
			fmt.Fprintf(bw, "%s_sum%s %g\n", name, labelPair(h.Name), h.Sum)
			fmt.Fprintf(bw, "%s_count%s %d\n", name, labelPair(h.Name), h.Count)
		}
	}
	return bw.Flush()
}

// jsonHistogram is one histogram in the JSON exposition.
type jsonHistogram struct {
	Name     string       `json:"name"`
	Instance string       `json:"instance,omitempty"`
	Count    int64        `json:"count"`
	Sum      float64      `json:"sum"`
	P50      float64      `json:"p50"`
	P90      float64      `json:"p90"`
	P99      float64      `json:"p99"`
	Buckets  []jsonBucket `json:"buckets"`
}

type jsonBucket struct {
	Le    string `json:"le"` // "+Inf" for the last bucket
	Count int64  `json:"count"`
}

type jsonSample struct {
	Name     string `json:"name"`
	Instance string `json:"instance,omitempty"`
	Value    int64  `json:"value"`
}

type jsonExport struct {
	Counters   []jsonSample    `json:"counters"`
	Gauges     []jsonSample    `json:"gauges"`
	Histograms []jsonHistogram `json:"histograms"`
}

// WriteJSON renders the registry as one JSON document: counters, gauges,
// and histograms with buckets and interpolated quantiles. Names keep
// their registry (dotted) form; instances are split into their own field.
func WriteJSON(w io.Writer, r *obs.Registry) error {
	out := jsonExport{Counters: []jsonSample{}, Gauges: []jsonSample{}, Histograms: []jsonHistogram{}}
	for _, m := range r.Snapshot() {
		base, inst := splitInstance(m.Name)
		switch m.Kind {
		case "counter":
			out.Counters = append(out.Counters, jsonSample{Name: base, Instance: inst, Value: m.Value})
		case "gauge":
			out.Gauges = append(out.Gauges, jsonSample{Name: base, Instance: inst, Value: m.Value})
		}
	}
	for _, h := range r.HistogramSnapshots() {
		base, inst := splitInstance(h.Name)
		jh := jsonHistogram{
			Name: base, Instance: inst, Count: h.Count, Sum: h.Sum,
			P50: h.P50, P90: h.P90, P99: h.P99,
			Buckets: make([]jsonBucket, len(h.Bounds)),
		}
		for i, b := range h.Bounds {
			jh.Buckets[i] = jsonBucket{Le: formatLe(b), Count: h.Counts[i]}
		}
		out.Histograms = append(out.Histograms, jh)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// histAcc accumulates one histogram's series during a text parse.
type histAcc struct {
	bounds    []float64
	counts    []int64
	exemplars []obs.Exemplar
	sum       float64
	count     int64
}

// ParseText reads a Prometheus text exposition (as written by WriteText,
// or any standard exporter limited to counters/gauges/histograms) back
// into obs.Metric values: histograms are reassembled from their
// _bucket/_sum/_count series, and the p50/p90/p99 estimates are
// recomputed from the parsed buckets. Metric names keep their exposition
// (underscored) form; an instance label is folded back into the
// "name{instance}" convention. Exemplars are parsed but dropped; use
// ParseTextSnapshot to keep bucket-level state.
func ParseText(r io.Reader) ([]obs.Metric, error) {
	snap, err := ParseTextSnapshot(r)
	if err != nil {
		return nil, err
	}
	out := make([]obs.Metric, 0, len(snap.Metrics)+len(snap.Histograms))
	out = append(out, snap.Metrics...)
	for _, h := range snap.Histograms {
		out = append(out, obs.Metric{
			Name: h.Name, Kind: "histogram", Value: h.Count, Sum: h.Sum,
			P50: h.P50, P90: h.P90, P99: h.P99,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ParseTextSnapshot reads a Prometheus text exposition back into a
// full-fidelity Snapshot: counters/gauges as flat metrics, histograms
// reassembled at bucket level with exemplars and recomputed quantile
// estimates. This is the parse the fleet federation layer uses — merged
// aggregation needs the buckets, not just the point estimates.
func ParseTextSnapshot(r io.Reader) (Snapshot, error) {
	types := make(map[string]string)
	plain := make(map[string]obs.Metric) // counters/gauges by full name
	hists := make(map[string]*histAcc)   // by "name{instance}"

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		name, labels, value, exemplar, err := parseSample(line)
		if err != nil {
			return Snapshot{}, err
		}
		instance := instanceOf(labels)
		switch {
		case strings.HasSuffix(name, "_bucket") && types[strings.TrimSuffix(name, "_bucket")] == "histogram":
			base := strings.TrimSuffix(name, "_bucket")
			h := histFor(hists, obs.Name(base, instance))
			le := labels["le"]
			bound := math.Inf(1)
			if le != "+Inf" {
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					return Snapshot{}, fmt.Errorf("expfmt: bad le=%q in %q", le, line)
				}
			}
			h.bounds = append(h.bounds, bound)
			h.counts = append(h.counts, clampCount(value))
			ex := obs.Exemplar{}
			if exemplar != nil {
				ex = *exemplar
			}
			h.exemplars = append(h.exemplars, ex)
		case strings.HasSuffix(name, "_sum") && types[strings.TrimSuffix(name, "_sum")] == "histogram":
			histFor(hists, obs.Name(strings.TrimSuffix(name, "_sum"), instance)).sum = value
		case strings.HasSuffix(name, "_count") && types[strings.TrimSuffix(name, "_count")] == "histogram":
			histFor(hists, obs.Name(strings.TrimSuffix(name, "_count"), instance)).count = clampCount(value)
		default:
			kind := types[name]
			if kind != "counter" && kind != "gauge" {
				// Untyped or unsupported family (summary, untyped):
				// treat as a gauge so nothing silently disappears.
				kind = "gauge"
			}
			plain[obs.Name(name, instance)] = obs.Metric{
				Name: obs.Name(name, instance), Kind: kind, Value: clampCount(value),
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, err
	}

	var snap Snapshot
	for _, m := range plain {
		snap.Metrics = append(snap.Metrics, m)
	}
	sort.Slice(snap.Metrics, func(i, j int) bool { return snap.Metrics[i].Name < snap.Metrics[j].Name })
	for name, h := range hists {
		sort.Sort(&boundSort{h.bounds, h.counts, h.exemplars})
		hs := obs.HistogramSnapshot{
			Name: name, Bounds: h.bounds, Counts: h.counts,
			Exemplars: h.exemplars, Count: h.count, Sum: h.sum,
		}
		if h.count > 0 {
			hs.P50 = obs.QuantileFromBuckets(h.bounds, h.counts, 0.50)
			hs.P90 = obs.QuantileFromBuckets(h.bounds, h.counts, 0.90)
			hs.P99 = obs.QuantileFromBuckets(h.bounds, h.counts, 0.99)
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap, nil
}

// clampCount converts a parsed sample value to int64, saturating instead
// of invoking implementation-defined float→int conversion on values
// outside the int64 range (a malformed exposition must not yield
// nonsense negatives for a huge positive count).
func clampCount(v float64) int64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v >= math.MaxInt64:
		return math.MaxInt64
	case v <= math.MinInt64:
		return math.MinInt64
	}
	return int64(v)
}

// instanceOf folds parsed labels (minus le) back into the registry
// "name{instance}" convention: a lone instance label keeps its plain
// value; anything else becomes sorted comma-separated k=v pairs.
func instanceOf(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	if len(keys) == 1 && keys[0] == "instance" {
		return labels["instance"]
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

func histFor(m map[string]*histAcc, key string) *histAcc {
	h, ok := m[key]
	if !ok {
		h = &histAcc{}
		m[key] = h
	}
	return h
}

type boundSort struct {
	bounds    []float64
	counts    []int64
	exemplars []obs.Exemplar
}

func (s *boundSort) Len() int           { return len(s.bounds) }
func (s *boundSort) Less(i, j int) bool { return s.bounds[i] < s.bounds[j] }
func (s *boundSort) Swap(i, j int) {
	s.bounds[i], s.bounds[j] = s.bounds[j], s.bounds[i]
	s.counts[i], s.counts[j] = s.counts[j], s.counts[i]
	if len(s.exemplars) == len(s.bounds) {
		s.exemplars[i], s.exemplars[j] = s.exemplars[j], s.exemplars[i]
	}
}

// parseSample splits one exposition sample line into name, labels,
// value, and an optional exemplar annotation. Trailing timestamps on
// the sample itself are ignored.
func parseSample(line string) (name string, labels map[string]string, value float64, exemplar *obs.Exemplar, err error) {
	// An exemplar annotation starts with " # " and carries its own brace
	// block; strip it before label detection so an unlabeled sample
	// (`foo 5 # {...} 0.3`) does not mistake the exemplar braces for
	// labels. When the sample has labels, the first '{' precedes any
	// " # " and the annotation is split off the remainder instead.
	sample := line
	var exPart string
	braceAt := strings.IndexByte(line, '{')
	if hashAt := strings.Index(line, " # "); hashAt >= 0 && (braceAt < 0 || hashAt < braceAt) {
		sample, exPart = line[:hashAt], line[hashAt+3:]
	}
	labels = make(map[string]string)
	rest := sample
	if i := strings.IndexByte(sample, '{'); i >= 0 {
		name = sample[:i]
		j := strings.IndexByte(sample[i:], '}')
		if j < 0 {
			return "", nil, 0, nil, fmt.Errorf("expfmt: unterminated labels in %q", line)
		}
		if labels, err = parseLabels(sample[i+1 : i+j]); err != nil {
			return "", nil, 0, nil, fmt.Errorf("expfmt: %v in %q", err, line)
		}
		rest = strings.TrimSpace(sample[i+j+1:])
	} else {
		f := strings.Fields(sample)
		if len(f) < 2 {
			return "", nil, 0, nil, fmt.Errorf("expfmt: malformed sample %q", line)
		}
		name = f[0]
		rest = strings.Join(f[1:], " ")
	}
	if exPart == "" {
		if k := strings.Index(rest, " # "); k >= 0 {
			rest, exPart = rest[:k], rest[k+3:]
		}
	}
	f := strings.Fields(rest)
	if len(f) < 1 {
		return "", nil, 0, nil, fmt.Errorf("expfmt: missing value in %q", line)
	}
	value, err = strconv.ParseFloat(f[0], 64)
	if err != nil {
		return "", nil, 0, nil, fmt.Errorf("expfmt: bad value in %q: %v", line, err)
	}
	return name, labels, value, parseExemplar(exPart), nil
}

// parseExemplar parses the `{trace_id="..."} value [unix-ts]` tail of an
// exemplar annotation. Malformed exemplars yield nil rather than failing
// the whole sample — exemplars are best-effort decoration.
func parseExemplar(s string) *obs.Exemplar {
	s = strings.TrimSpace(s)
	if len(s) == 0 || s[0] != '{' {
		return nil
	}
	j := strings.IndexByte(s, '}')
	if j < 0 {
		return nil
	}
	labels, err := parseLabels(s[1:j])
	if err != nil || labels["trace_id"] == "" {
		return nil
	}
	ex := &obs.Exemplar{TraceID: labels["trace_id"]}
	f := strings.Fields(s[j+1:])
	if len(f) >= 1 {
		if v, err := strconv.ParseFloat(f[0], 64); err == nil && !math.IsNaN(v) {
			ex.Value = v
		}
	}
	if len(f) >= 2 {
		// Reject timestamps outside a plausible unix-seconds range so a
		// garbage exposition cannot smuggle ±Inf into time conversion.
		if ts, err := strconv.ParseFloat(f[1], 64); err == nil && math.Abs(ts) < 1e12 {
			sec := int64(ts)
			ex.Time = time.Unix(sec, int64((ts-float64(sec))*1e9))
		}
	}
	return ex
}

// parseLabels parses `k="v",k2="v2"` (values may contain escaped quotes).
func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label segment %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = strings.TrimPrefix(strings.TrimSpace(s[i+1:]), ",")
				s = strings.TrimSpace(s)
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %s value unterminated", key)
		}
		out[key] = val.String()
	}
	return out, nil
}
