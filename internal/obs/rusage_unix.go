//go:build unix

package obs

import "syscall"

// processCPUSeconds returns the process's cumulative user+system CPU
// time. Getrusage is one cheap syscall on every unix the simulator runs
// on; platforms without it report 0 and the CPU counter stays at zero.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if syscall.Getrusage(syscall.RUSAGE_SELF, &ru) != nil {
		return 0
	}
	return float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6 +
		float64(ru.Stime.Sec) + float64(ru.Stime.Usec)/1e6
}
