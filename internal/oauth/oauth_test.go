package oauth

import (
	"strings"
	"testing"
	"time"

	"gridftp.dev/instant/internal/ca"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
)

func oauthEnv(t *testing.T) (*netsim.Network, *Server, string, *gsi.TrustStore) {
	t.Helper()
	signing, err := gsi.NewCA("/O=Grid/OU=siteA/CN=CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	dir := pam.NewLDAPDirectory("dc=siteA")
	dir.AddEntry("alice", "s3cret")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	stack := pam.NewStack("oauth", accounts, pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
	online := ca.New(signing, stack, "/O=Grid/OU=siteA")
	hostCred, err := signing.Issue(gsi.IssueOptions{Subject: "/O=Grid/OU=siteA/CN=oauth-host", Lifetime: time.Hour, Host: true})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	srv := NewServer(online, hostCred)
	srv.RegisterClient(Client{ID: "globusonline", Secret: "go-secret"})
	addr, err := srv.ListenAndServe(nw.Host("siteA"), DefaultPort)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	trust := gsi.NewTrustStore()
	trust.AddCA(signing.Certificate())
	return nw, srv, "https://" + addr.String(), trust
}

func TestOAuthFullFlow(t *testing.T) {
	nw, _, base, trust := oauthEnv(t)
	goClient := Client{ID: "globusonline", Secret: "go-secret"}

	// Third party (Globus Online, on its own host) starts authorization.
	goHTTP := HTTPClient(nw.Host("globusonline"), trust)
	session, err := Authorize(goHTTP, base, goClient.ID, "xyz-state")
	if err != nil {
		t.Fatal(err)
	}

	// The USER logs in directly at the site — from the user's own host.
	userHTTP := HTTPClient(nw.Host("laptop"), trust)
	code, err := Login(userHTTP, base, session, "alice", "s3cret")
	if err != nil {
		t.Fatal(err)
	}

	// Third party exchanges the code; password never crossed its host.
	cred, err := ExchangeCode(goHTTP, base, goClient, code)
	if err != nil {
		t.Fatal(err)
	}
	if cred.DN() != "/O=Grid/OU=siteA/CN=alice" {
		t.Fatalf("issued DN %q", cred.DN())
	}
	if cred.Key == nil {
		t.Fatal("credential missing key")
	}
	if _, err := trust.Verify(cred.FullChain(), time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestOAuthWrongPassword(t *testing.T) {
	nw, _, base, trust := oauthEnv(t)
	hc := HTTPClient(nw.Host("laptop"), trust)
	session, err := Authorize(hc, base, "globusonline", "s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Login(hc, base, session, "alice", "wrong"); err == nil ||
		!strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("want auth failure, got %v", err)
	}
}

func TestOAuthCodeSingleUse(t *testing.T) {
	nw, _, base, trust := oauthEnv(t)
	goClient := Client{ID: "globusonline", Secret: "go-secret"}
	hc := HTTPClient(nw.Host("go"), trust)
	session, _ := Authorize(hc, base, goClient.ID, "s")
	code, err := Login(hc, base, session, "alice", "s3cret")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExchangeCode(hc, base, goClient, code); err != nil {
		t.Fatal(err)
	}
	if _, err := ExchangeCode(hc, base, goClient, code); err == nil {
		t.Fatal("code replay accepted")
	}
}

func TestOAuthRejectsBadClients(t *testing.T) {
	nw, _, base, trust := oauthEnv(t)
	hc := HTTPClient(nw.Host("go"), trust)
	if _, err := Authorize(hc, base, "unknown-client", "s"); err == nil {
		t.Fatal("unknown client accepted")
	}
	session, _ := Authorize(hc, base, "globusonline", "s")
	code, _ := Login(hc, base, session, "alice", "s3cret")
	if _, err := ExchangeCode(hc, base, Client{ID: "globusonline", Secret: "wrong"}, code); err == nil {
		t.Fatal("wrong client secret accepted")
	}
}

func TestOAuthSessionSingleUse(t *testing.T) {
	nw, _, base, trust := oauthEnv(t)
	hc := HTTPClient(nw.Host("go"), trust)
	session, _ := Authorize(hc, base, "globusonline", "s")
	if _, err := Login(hc, base, session, "alice", "s3cret"); err != nil {
		t.Fatal(err)
	}
	if _, err := Login(hc, base, session, "alice", "s3cret"); err == nil {
		t.Fatal("session replay accepted")
	}
}
