// Package oauth implements the OAuth certificate-issuance service the
// paper pairs with GCMU (§VI, Fig 7, [27]): users enter their site
// password only on a web page *run by the site*; the third-party agent
// (Globus Online) receives an authorization code and exchanges it — plus a
// locally generated public key — for a short-lived certificate. The
// password therefore never flows through the third party.
//
// Endpoints (JSON over HTTPS):
//
//	GET  /authorize?client_id=..&state=..   -> {"session": id}
//	POST /login    {session,username,password} -> {"code": c, "state": s}
//	POST /token    {client_id,client_secret,code,pubkey} -> {"cert": pem-b64}
package oauth

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"gridftp.dev/instant/internal/ca"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
)

// DefaultPort is the port the GCMU OAuth server listens on.
const DefaultPort = 443

// Client is a registered OAuth client (e.g. the Globus Online service).
type Client struct {
	ID     string
	Secret string
}

// Server is the site-run OAuth certificate issuer.
type Server struct {
	// OnlineCA issues certificates after a successful login.
	OnlineCA *ca.OnlineCA
	// HostCred is the HTTPS identity.
	HostCred *gsi.Credential

	mu       sync.Mutex
	clients  map[string]Client
	sessions map[string]*authSession
	codes    map[string]*authGrant

	listener net.Listener
	httpSrv  *http.Server
}

type authSession struct {
	clientID string
	state    string
	created  time.Time
}

type authGrant struct {
	clientID string
	username string
	created  time.Time
}

// NewServer creates an OAuth server.
func NewServer(online *ca.OnlineCA, hostCred *gsi.Credential) *Server {
	return &Server{
		OnlineCA: online,
		HostCred: hostCred,
		clients:  make(map[string]Client),
		sessions: make(map[string]*authSession),
		codes:    make(map[string]*authGrant),
	}
}

// RegisterClient provisions a client id/secret pair.
func (s *Server) RegisterClient(c Client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clients[c.ID] = c
}

func token() string {
	var b [16]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// ListenAndServe starts the HTTPS endpoint on the simulated host.
func (s *Server) ListenAndServe(host *netsim.Host, port int) (net.Addr, error) {
	l, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	s.listener = l
	mux := http.NewServeMux()
	mux.HandleFunc("GET /authorize", s.handleAuthorize)
	mux.HandleFunc("POST /login", s.handleLogin)
	mux.HandleFunc("POST /token", s.handleToken)
	s.httpSrv = &http.Server{
		Handler: mux,
		TLSConfig: &tls.Config{
			Certificates: []tls.Certificate{s.HostCred.TLSCertificate()},
			MinVersion:   tls.VersionTLS12,
		},
	}
	go s.httpSrv.ServeTLS(l, "", "")
	return l.Addr(), nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleAuthorize(w http.ResponseWriter, r *http.Request) {
	clientID := r.URL.Query().Get("client_id")
	state := r.URL.Query().Get("state")
	s.mu.Lock()
	_, ok := s.clients[clientID]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unknown client_id"})
		return
	}
	id := token()
	s.mu.Lock()
	s.sessions[id] = &authSession{clientID: clientID, state: state, created: time.Now()}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"session": id})
}

type loginRequest struct {
	Session  string `json:"session"`
	Username string `json:"username"`
	Password string `json:"password"`
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req loginRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request"})
		return
	}
	s.mu.Lock()
	sess, ok := s.sessions[req.Session]
	if ok {
		delete(s.sessions, req.Session)
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unknown session"})
		return
	}
	acct, err := s.OnlineCA.Auth.Authenticate(req.Username, pam.PasswordConv(req.Password))
	if err != nil {
		writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "authentication failed"})
		return
	}
	code := token()
	s.mu.Lock()
	s.codes[code] = &authGrant{clientID: sess.clientID, username: acct.Name, created: time.Now()}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"code": code, "state": sess.state})
}

type tokenRequest struct {
	ClientID     string `json:"client_id"`
	ClientSecret string `json:"client_secret"`
	Code         string `json:"code"`
	PubKey       string `json:"pubkey"` // base64 PKIX DER
}

func (s *Server) handleToken(w http.ResponseWriter, r *http.Request) {
	var req tokenRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request"})
		return
	}
	s.mu.Lock()
	client, cok := s.clients[req.ClientID]
	grant, gok := s.codes[req.Code]
	if gok {
		delete(s.codes, req.Code) // single-use
	}
	s.mu.Unlock()
	if !cok || client.Secret != req.ClientSecret {
		writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "bad client credentials"})
		return
	}
	if !gok || grant.clientID != req.ClientID {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid code"})
		return
	}
	keyDER, err := base64.StdEncoding.DecodeString(req.PubKey)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad pubkey encoding"})
		return
	}
	pub, err := x509.ParsePKIXPublicKey(keyDER)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unparsable pubkey"})
		return
	}
	cred, err := s.OnlineCA.IssuePreauthed(grant.username, pub, 0)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	pemBundle, err := cred.EncodePEM()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "encoding failure"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"cert": base64.StdEncoding.EncodeToString(pemBundle)})
}

// HTTPClient returns an *http.Client that dials through the simulated
// network from the given host and accepts the site's TLS identity per
// trust (nil = accept on first use).
func HTTPClient(host *netsim.Host, trust *gsi.TrustStore) *http.Client {
	tlsCfg := &tls.Config{InsecureSkipVerify: true, MinVersion: tls.VersionTLS12}
	if trust != nil {
		tlsCfg = gsi.ClientTLSConfig(nil, trust)
	}
	return &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				return host.DialContext(ctx, addr)
			},
			TLSClientConfig: tlsCfg,
		},
		Timeout: time.Minute,
	}
}

// --- Third-party client helpers (used by the Globus Online service) ---

// Authorize starts an authorization session, returning the session id the
// user's browser is redirected with.
func Authorize(hc *http.Client, baseURL, clientID, state string) (string, error) {
	resp, err := hc.Get(fmt.Sprintf("%s/authorize?client_id=%s&state=%s", baseURL, clientID, state))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("oauth: authorize: %s", out["error"])
	}
	return out["session"], nil
}

// Login is the *user's* direct interaction with the site's web page: the
// password travels only here, never through the third party.
func Login(hc *http.Client, baseURL, session, username, password string) (code string, err error) {
	body, _ := json.Marshal(loginRequest{Session: session, Username: username, Password: password})
	resp, err := hc.Post(baseURL+"/login", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("oauth: login: %s", out["error"])
	}
	return out["code"], nil
}

// ExchangeCode redeems an authorization code for a short-lived credential;
// the private key is generated here, at the caller.
func ExchangeCode(hc *http.Client, baseURL string, client Client, code string) (*gsi.Credential, error) {
	cred, pub, err := freshKeypair()
	if err != nil {
		return nil, err
	}
	body, _ := json.Marshal(tokenRequest{
		ClientID: client.ID, ClientSecret: client.Secret, Code: code,
		PubKey: base64.StdEncoding.EncodeToString(pub),
	})
	resp, err := hc.Post(baseURL+"/token", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("oauth: token: %s", out["error"])
	}
	pemBundle, err := base64.StdEncoding.DecodeString(out["cert"])
	if err != nil {
		return nil, err
	}
	issued, err := gsi.DecodePEM(pemBundle)
	if err != nil {
		return nil, err
	}
	issued.Key = cred.Key
	return issued, nil
}

func freshKeypair() (*gsi.Credential, []byte, error) {
	tmp, err := gsi.SelfSignedCredential("/CN=keyholder", time.Hour)
	if err != nil {
		return nil, nil, err
	}
	pubDER, err := x509.MarshalPKIXPublicKey(&tmp.Key.PublicKey)
	if err != nil {
		return nil, nil, err
	}
	return tmp, pubDER, nil
}
