// Smallfiles: GridFTP's lots-of-small-files optimizations (§II.A).
//
// A dataset of many small files is downloaded over a 15 ms RTT path four
// ways: a fresh session per file (the scp-equivalent worst case), one
// session issuing sequential commands (data channel caching), one session
// with pipelined commands, and several concurrent pipelined sessions —
// the pipelining [11] and concurrency [12] optimizations the paper cites.
//
// Run with: go run ./examples/smallfiles
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"gridftp.dev/instant/internal/authz"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

const (
	numFiles    = 40
	fileSize    = 32 << 10
	rtt         = 15 * time.Millisecond
	concurrency = 4
)

func main() {
	nw := netsim.NewNetwork()
	nw.SetDefaultLink(netsim.LinkParams{Bandwidth: 50e6, RTT: rtt, StreamWindow: 1 << 22})

	// A site with the dataset.
	ca, err := gsi.NewCA("/O=Grid/OU=archive/CN=CA", 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	hostCred, _ := ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/OU=archive/CN=host", Lifetime: 12 * time.Hour, Host: true})
	user, _ := ca.Issue(gsi.IssueOptions{Subject: "/O=Grid/OU=archive/CN=alice", Lifetime: 12 * time.Hour})
	trust := gsi.NewTrustStore()
	trust.AddCA(ca.Certificate())
	storage := dsi.NewMemStorage()
	storage.AddUser("alice")
	gm := authz.NewGridmap()
	gm.AddEntry(user.DN(), "alice")
	srv, err := gridftp.NewServer(nw.Host("archive"), gridftp.ServerConfig{
		HostCred: hostCred, Trust: trust, Authz: gm, Storage: storage,
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, _ := srv.ListenAndServe(gridftp.DefaultPort)

	storage.Mkdir("alice", "/frames")
	content := make([]byte, fileSize)
	paths := make([]string, numFiles)
	for i := range paths {
		paths[i] = fmt.Sprintf("/frames/frame%04d.dat", i)
		f, _ := storage.Create("alice", paths[i])
		dsi.WriteAll(f, content)
		f.Close()
	}
	fmt.Printf("dataset: %d files x %d KiB, link RTT %v\n\n", numFiles, fileSize/1024, rtt)

	connect := func() *gridftp.Client {
		proxy, _ := gsi.NewProxy(user, gsi.ProxyOptions{})
		c, err := gridftp.Dial(nw.Host("laptop"), addr.String(), proxy, trust)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Delegate(time.Hour); err != nil {
			log.Fatal(err)
		}
		return c
	}

	show := func(name string, d time.Duration, baseline time.Duration) {
		fmt.Printf("%-38s %8v  %6.1f files/s  %5.1fx\n",
			name, d.Round(time.Millisecond), float64(numFiles)/d.Seconds(), float64(baseline)/float64(d))
	}

	// 1. Fresh session per file: every file pays login + channel setup.
	start := time.Now()
	for _, p := range paths {
		c := connect()
		if _, err := c.Get(p, dsi.NewBufferFile(nil)); err != nil {
			log.Fatal(err)
		}
		c.Close()
	}
	naive := time.Since(start)
	show("fresh session per file (scp-style)", naive, naive)

	// 2. One session, sequential gets: channels are cached, but each file
	//    still pays a command round trip.
	c := connect()
	start = time.Now()
	for _, p := range paths {
		if _, err := c.Get(p, dsi.NewBufferFile(nil)); err != nil {
			log.Fatal(err)
		}
	}
	show("one session, sequential (cached)", time.Since(start), naive)
	c.Close()

	// 3. Pipelined commands: all RETRs go out back to back.
	c = connect()
	items := make([]gridftp.GetItem, numFiles)
	for i, p := range paths {
		items[i] = gridftp.GetItem{Path: p, Dst: dsi.NewBufferFile(nil)}
	}
	start = time.Now()
	if err := c.GetMany(items); err != nil {
		log.Fatal(err)
	}
	show("one session, pipelined", time.Since(start), naive)
	c.Close()

	// 4. Concurrency: several pipelined sessions in parallel.
	start = time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cc := connect()
			defer cc.Close()
			var slice []gridftp.GetItem
			for i := w; i < numFiles; i += concurrency {
				slice = append(slice, gridftp.GetItem{Path: paths[i], Dst: dsi.NewBufferFile(nil)})
			}
			if err := cc.GetMany(slice); err != nil {
				log.Fatal(err)
			}
		}(w)
	}
	wg.Wait()
	show(fmt.Sprintf("%d concurrent pipelined sessions", concurrency), time.Since(start), naive)
}
