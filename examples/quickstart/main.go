// Quickstart: the "instant GridFTP" experience end to end.
//
// This example performs the paper's §IV workflow with the library's public
// API: install a GCMU endpoint (GridFTP server + MyProxy Online CA + AUTHZ
// callout) with one call, obtain a short-lived credential with a site
// username/password, and move files — no external certificate authority,
// no gridmap file, no security configuration.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/pam"
)

func main() {
	// The simulated network: one site host and the user's laptop.
	nw := netsim.NewNetwork()

	// The site's existing identity infrastructure: an LDAP directory and
	// a local account, wired into a PAM stack. GCMU attaches to whatever
	// the site already has (LDAP, NIS, RADIUS, OTP).
	directory := pam.NewLDAPDirectory("dc=example,dc=org")
	directory.AddEntry("alice", "correct-horse")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	auth := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: directory}})

	// "sudo ./install" — the whole server side in one call (§IV.D).
	endpoint, err := gcmu.Install(gcmu.Options{
		Name:     "example",
		Host:     nw.Host("example.org"),
		Auth:     auth,
		Accounts: accounts,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer endpoint.Close()
	fmt.Printf("endpoint up: gridftp=%s myproxy=%s\n", endpoint.GridFTPAddr, endpoint.MyProxyAddr)
	fmt.Printf("site CA:     %s (created at install; no external CA)\n\n", endpoint.SigningCA.DN())

	// Client side (§IV.E): myproxy-logon with the site password, then an
	// authenticated GridFTP session with delegation.
	client, err := endpoint.Connect(nw.Host("laptop"), "alice", pam.PasswordConv("correct-horse"))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Upload, list, download.
	payload := bytes.Repeat([]byte("instant gridftp! "), 4096)
	start := time.Now()
	stats, err := client.Put("/dataset.bin", dsi.NewBufferFile(payload))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("put  /dataset.bin: %d bytes in %v\n", stats.Bytes, time.Since(start).Round(time.Millisecond))

	entries, err := client.List("/")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("list %s\n", e)
	}

	dst := dsi.NewBufferFile(nil)
	if _, err := client.Get("/dataset.bin", dst); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		log.Fatal("round-trip content mismatch")
	}
	fmt.Printf("get  /dataset.bin: %d bytes, content verified\n", len(dst.Bytes()))
}
