// Crossdomain: the paper's Figures 4 and 5, live.
//
// Two sites run their own certificate authorities with no mutual trust. A
// third-party transfer between them fails under conventional data channel
// authentication — endpoint B cannot validate a credential issued by CA-A
// — and then succeeds once the client installs a Data Channel Security
// Context (DCSC, the paper's §V protocol extension) on the destination.
// The source endpoint never hears about DCSC, demonstrating legacy
// interoperability.
//
// Run with: go run ./examples/crossdomain
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"gridftp.dev/instant/internal/authz"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
)

// buildSite creates an independent trust domain: its own CA, host
// credential, one user ("alice"), and a GridFTP server.
func buildSite(nw *netsim.Network, name string) (trust *gsi.TrustStore, user *gsi.Credential, addr string, storage *dsi.MemStorage) {
	ca, err := gsi.NewCA(gsi.DN("/O=Grid/OU="+name+"/CN=CA"), 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	hostCred, err := ca.Issue(gsi.IssueOptions{
		Subject: gsi.DN("/O=Grid/OU=" + name + "/CN=host"), Lifetime: 12 * time.Hour, Host: true})
	if err != nil {
		log.Fatal(err)
	}
	user, err = ca.Issue(gsi.IssueOptions{
		Subject: gsi.DN("/O=Grid/OU=" + name + "/CN=alice"), Lifetime: 12 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	trust = gsi.NewTrustStore()
	trust.AddCA(ca.Certificate())
	storage = dsi.NewMemStorage()
	storage.AddUser("alice")
	gm := authz.NewGridmap()
	gm.AddEntry(user.DN(), "alice")
	srv, err := gridftp.NewServer(nw.Host(name), gridftp.ServerConfig{
		HostCred: hostCred, Trust: trust, Authz: gm, Storage: storage, EndpointName: name,
	})
	if err != nil {
		log.Fatal(err)
	}
	a, err := srv.ListenAndServe(gridftp.DefaultPort)
	if err != nil {
		log.Fatal(err)
	}
	return trust, user, a.String(), storage
}

func connect(nw *netsim.Network, addr string, user *gsi.Credential, trust *gsi.TrustStore) *gridftp.Client {
	proxy, err := gsi.NewProxy(user, gsi.ProxyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	c, err := gridftp.Dial(nw.Host("laptop"), addr, proxy, trust)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Delegate(2 * time.Hour); err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	nw := netsim.NewNetwork()
	trustA, userA, addrA, storageA := buildSite(nw, "siteA")
	trustB, userB, addrB, storageB := buildSite(nw, "siteB")
	_ = trustB

	// The user holds a different credential at each site (the "many
	// identities for many service providers" reality of §IV.A) and is
	// logged in to both — the control channels are fine. Only the
	// server-to-server data channel is at issue.
	clientA := connect(nw, addrA, userA, trustA)
	defer clientA.Close()
	clientB := connect(nw, addrB, userB, trustB)
	defer clientB.Close()

	payload := bytes.Repeat([]byte{0xA5}, 512*1024)
	f, _ := storageA.Create("alice", "/dataset.bin")
	dsi.WriteAll(f, payload)
	f.Close()

	// Attempt 1: conventional DCAU (Fig 4) — must fail.
	fmt.Println("third-party transfer siteA -> siteB, conventional DCAU (Fig 4):")
	_, err := gridftp.ThirdParty(clientA, "/dataset.bin", clientB, "/dataset.bin", gridftp.ThirdPartyOptions{})
	if err == nil {
		log.Fatal("unexpected success: the CAs share no trust")
	}
	fmt.Printf("  refused, as the paper predicts:\n  %v\n\n", err)

	// Attempt 2: DCSC P with credential A sent to site B (Fig 5).
	fmt.Println("same transfer with DCSC P (credential A -> site B, Fig 5):")
	res, err := gridftp.ThirdParty(clientA, "/dataset.bin", clientB, "/dataset.bin", gridftp.ThirdPartyOptions{
		DCSC:       userA,
		DCSCTarget: gridftp.DCSCDest,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, _ := storageB.Open("alice", "/dataset.bin")
	got, _ := dsi.ReadAll(g)
	g.Close()
	if !bytes.Equal(got, payload) {
		log.Fatal("content mismatch")
	}
	fmt.Printf("  succeeded in %v; destination content verified\n", res.Duration.Round(time.Millisecond))
	fmt.Println("  site A never received a DCSC command (legacy-compatible)")

	// Bonus: the higher-security variant — a random self-signed context
	// installed on both endpoints (§V).
	random, err := gsi.SelfSignedCredential("/CN=ephemeral-dcsc", time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhigher-security variant: random self-signed DCSC on both endpoints:")
	if _, err := gridftp.ThirdParty(clientA, "/dataset.bin", clientB, "/dataset2.bin", gridftp.ThirdPartyOptions{
		DCSC:       random,
		DCSCTarget: gridftp.DCSCBoth,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  succeeded — neither site's long-term credential touched the data channel")
}
