// Globusonline: the hosted transfer service of the paper's §VI.
//
// Two GCMU endpoints in unrelated trust domains register with a Globus
// Online-style service. The user activates both (here via OAuth, so the
// password never crosses the service — Fig 7), submits a third-party
// transfer, and the service handles everything: DCSC across the CA
// boundary, auto-tuned parallelism, restart markers, and — with a fault
// injected mid-transfer — reauthentication and restart from the last
// checkpoint (§VI.B).
//
// Run with: go run ./examples/globusonline
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/oauth"
	"gridftp.dev/instant/internal/pam"
	"gridftp.dev/instant/internal/transfer"
)

func installEndpoint(nw *netsim.Network, name, password string) (*gcmu.Endpoint, *dsi.FaultStorage) {
	dir := pam.NewLDAPDirectory("dc=" + name)
	dir.AddEntry("alice", password)
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	auth := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
	mem := dsi.NewMemStorage()
	mem.AddUser("alice")
	faulty := dsi.NewFaultStorage(mem)
	ep, err := gcmu.Install(gcmu.Options{
		Name: name, Host: nw.Host(name), Auth: auth, Accounts: accounts,
		Storage: faulty, WithOAuth: true, MarkerInterval: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	ep.OAuth.RegisterClient(transfer.OAuthClient)
	return ep, faulty
}

func main() {
	nw := netsim.NewNetwork()
	epA, _ := installEndpoint(nw, "siteA", "pwA")
	defer epA.Close()
	epB, faultB := installEndpoint(nw, "siteB", "pwB")
	defer epB.Close()

	// The hosted service runs on its own host, like the real SaaS.
	svc := transfer.NewService(nw.Host("globusonline"), transfer.Config{
		RetryDelay: 20 * time.Millisecond,
	})
	for _, ep := range []*gcmu.Endpoint{epA, epB} {
		if err := svc.RegisterEndpoint(transfer.Endpoint{
			Name: ep.Name, GridFTPAddr: ep.GridFTPAddr, MyProxyAddr: ep.MyProxyAddr,
			OAuthAddr: ep.OAuthAddr, Trust: ep.Trust, CADN: ep.SigningCA.DN(),
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("endpoints registered: %v\n", svc.Endpoints())

	// OAuth activation (Fig 7): the user's browser logs in at each SITE;
	// the service only ever sees the authorization code.
	login := func(ep *gcmu.Endpoint, pw string) transfer.UserLoginFunc {
		return func(base, session string) (string, error) {
			browser := oauth.HTTPClient(nw.Host("laptop"), ep.Trust)
			return oauth.Login(browser, base, session, "alice", pw)
		}
	}
	if err := svc.ActivateWithOAuth("siteA", "alice", login(epA, "pwA")); err != nil {
		log.Fatal(err)
	}
	if err := svc.ActivateWithOAuth("siteB", "alice", login(epB, "pwB")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("activated via OAuth; passwords seen by the service: %d\n\n", svc.PasswordsSeen)

	// Seed a dataset and slow the inter-site link so markers accumulate.
	payload := bytes.Repeat([]byte("climate-model-output "), 200000) // ~4 MiB
	if err := epA.Storage.Mkdir("alice", "/esg"); err != nil {
		log.Fatal(err)
	}
	if err := epB.Storage.Mkdir("alice", "/esg"); err != nil {
		log.Fatal(err)
	}
	f, err := epA.Storage.Create("alice", "/esg/run42.nc")
	if err != nil {
		log.Fatal(err)
	}
	dsi.WriteAll(f, payload)
	f.Close()
	nw.SetLink("siteA", "siteB", netsim.LinkParams{
		Bandwidth: 25e6, RTT: 5 * time.Millisecond, StreamWindow: 1 << 22,
	})

	// Inject a receive-side failure at ~50% — a disk error at site B.
	faultB.Arm(int64(len(payload) / 2))
	fmt.Println("fault armed: site B's storage will fail mid-transfer")

	task, err := svc.Submit("alice", "siteA", "/esg/run42.nc", "siteB", "/esg/run42.nc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s: siteA:/esg/run42.nc -> siteB:/esg/run42.nc (%d bytes)\n\n", task.ID, len(payload))

	done, err := svc.Wait(task.ID, 2*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task status:   %s\n", done.Status)
	fmt.Printf("attempts:      %d (first failed on the injected fault)\n", done.Attempts)
	fmt.Printf("parallelism:   %d (auto-tuned for the file size)\n", done.Parallelism)
	fmt.Printf("bytes moved:   %d across all attempts (file is %d)\n", done.BytesTransferred, len(payload))
	fmt.Printf("saved by ckpt: ~%d bytes not re-sent thanks to restart markers\n",
		int64(done.Attempts)*int64(len(payload))-done.BytesTransferred)

	g, err := epB.Storage.Open("alice", "/esg/run42.nc")
	if err != nil {
		log.Fatal(err)
	}
	got, _ := dsi.ReadAll(g)
	g.Close()
	if !bytes.Equal(got, payload) {
		log.Fatal("content mismatch after recovery")
	}
	fmt.Println("verification:  destination content matches byte for byte")
}
