// Package instant's root benchmark harness: one benchmark per experiment
// in DESIGN.md's per-experiment index (E1-E13 plus ablations). Each
// benchmark runs the same measurement its experiment table reports —
// `go test -bench=. -benchmem` regenerates every figure's underlying
// numbers, and `cmd/benchreport` prints them as the paper-style tables.
//
// Custom metrics: transfer benchmarks report MB/s (simulated-wall-clock
// throughput over the shaped link); behavioural benchmarks (DCSC, setup,
// checkpoint) report the relevant count or duration.
package instant

import (
	"fmt"
	"net"
	"testing"
	"time"

	"gridftp.dev/instant/internal/experiments"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/expfmt"
	"gridftp.dev/instant/internal/obs/fleet"
	"gridftp.dev/instant/internal/obs/profile"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/obs/tenant"
	"gridftp.dev/instant/internal/obs/tsdb"
)

// benchLink is the reference WAN for throughput benches: 40 MB/s
// bottleneck, 20 ms RTT, untuned 64 KiB windows.
var benchLink = netsim.LinkParams{
	Bandwidth:    40e6,
	RTT:          20 * time.Millisecond,
	StreamWindow: 64 * 1024,
}

const benchFileBytes = 1 << 20

func reportRate(b *testing.B, bytesPerSec float64) {
	b.Helper()
	b.ReportMetric(bytesPerSec/1e6, "MB/s")
}

// BenchmarkE1UsageAggregation drives the Fig 1 usage-stats pipeline: a
// fleet of servers batch-reporting a day of transfers.
func BenchmarkE1UsageAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE1Usage(experiments.E1Config{Servers: 500, Days: 7, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2ParallelStreams measures GridFTP throughput per stream count
// on the reference WAN, plus the SCP and stream-FTP baselines (§I claim).
func BenchmarkE2ParallelStreams(b *testing.B) {
	b.Run("scp", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			r, err := experiments.MeasureSCPRate(benchLink, benchFileBytes)
			if err != nil {
				b.Fatal(err)
			}
			last = r
		}
		reportRate(b, last)
	})
	b.Run("ftp-stream", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			r, err := experiments.MeasureWanRate(benchLink, benchFileBytes, 1, true)
			if err != nil {
				b.Fatal(err)
			}
			last = r
		}
		reportRate(b, last)
	})
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("gridftp-p%d", p), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.MeasureWanRate(benchLink, benchFileBytes, p, false)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			reportRate(b, last)
		})
	}
}

// BenchmarkE3DcauOverhead measures PROT C/S/P throughput on a CPU-bound
// link (§II.C's protection-cost claim).
func BenchmarkE3DcauOverhead(b *testing.B) {
	for _, row := range []struct {
		name string
		prot gridftp.ProtLevel
	}{
		{"prot-C-clear", gridftp.ProtClear},
		{"prot-S-integrity", gridftp.ProtSafe},
		{"prot-P-private", gridftp.ProtPrivate},
	} {
		b.Run(row.name, func(b *testing.B) {
			const size = 16 << 20
			var last float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.MeasureProtRate(size, row.prot)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.SetBytes(size)
			reportRate(b, last)
		})
	}
}

// BenchmarkE4Dcsc measures the DCSC fix path (Fig 5): a cross-CA
// third-party transfer with the source credential installed at the
// destination.
func BenchmarkE4Dcsc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ok, err := experiments.MeasureDcscScenario(false, "credA->dst")
		if err != nil || !ok {
			b.Fatalf("DCSC scenario failed: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkE5SetupSteps measures the live GCMU time-to-first-transfer
// (install -> myproxy-logon -> transfer).
func BenchmarkE5SetupSteps(b *testing.B) {
	var last time.Duration
	for i := 0; i < b.N; i++ {
		d, err := experiments.MeasureGCMUFirstTransfer()
		if err != nil {
			b.Fatal(err)
		}
		last = d
	}
	b.ReportMetric(float64(last.Milliseconds()), "ms/install-to-transfer")
}

// BenchmarkE6CheckpointRestart measures bytes moved for a fault-injected
// transfer with restart markers (§VI.B) vs without.
func BenchmarkE6CheckpointRestart(b *testing.B) {
	cfg := experiments.E6Config{
		FileBytes:     2 << 20,
		FaultFraction: 0.5,
		Link:          netsim.LinkParams{Bandwidth: 20e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22},
	}
	for _, mode := range []struct {
		name        string
		checkpoints bool
	}{
		{"markers", true},
		{"full-retransfer", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var moved int64
			for i := 0; i < b.N; i++ {
				m, err := experiments.MeasureCheckpointTask(cfg, mode.checkpoints)
				if err != nil {
					b.Fatal(err)
				}
				moved = m
			}
			b.ReportMetric(float64(moved)/float64(cfg.FileBytes), "bytes-moved/file-size")
		})
	}
}

// BenchmarkE7SmallFiles measures lots-of-small-files configurations
// (§II.A pipelining/concurrency).
func BenchmarkE7SmallFiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE7SmallFiles(experiments.E7Config{
			Files: 12, FileBytes: 16 << 10, RTT: 5 * time.Millisecond, Concurrency: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Striping measures aggregate throughput per stripe count
// (§II.B striped server).
func BenchmarkE8Striping(b *testing.B) {
	cfg := experiments.E8Config{
		FileBytes: 2 << 20,
		PerLink:   netsim.LinkParams{Bandwidth: 8e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22},
	}
	for _, stripes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("stripes-%d", stripes), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.MeasureStripedRate(cfg, stripes)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			reportRate(b, last)
		})
	}
}

// BenchmarkE9ThirdParty measures direct third-party transfer vs the
// client-relayed baseline with a slow client uplink (§VII).
func BenchmarkE9ThirdParty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE9ThirdParty(experiments.E9Config{
			FileBytes:  1 << 20,
			ServerLink: netsim.LinkParams{Bandwidth: 40e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22},
			ClientLink: netsim.LinkParams{Bandwidth: 4e6, RTT: 10 * time.Millisecond, StreamWindow: 1 << 22},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Workflow runs the full GCMU Fig 3 workflow end to end.
func BenchmarkE10Workflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE10Workflow(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11OAuthAudit runs both activation flows and the secret audit.
func BenchmarkE11OAuthAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE11OAuthAudit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12ControlSecurity probes the control channel invariants.
func BenchmarkE12ControlSecurity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE12ControlSecurity(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14SmallFilesScheduler measures the hosted service's
// concurrent transfer scheduler on a many-small-files directory task over
// high-RTT links (§VI.A task orchestration): the sequential path
// (TaskConcurrency=1) vs the auto-sized worker fan-out.
func BenchmarkE14SmallFilesScheduler(b *testing.B) {
	cfg := experiments.E14Config{
		Files:     24,
		FileBytes: 64 << 10,
		Link:      netsim.LinkParams{Bandwidth: 40e6, RTT: 10 * time.Millisecond, StreamWindow: 1 << 20},
	}
	for _, mode := range []struct {
		name        string
		concurrency int
	}{
		{"sequential", 1},
		{"scheduled", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.MeasureSchedulerRun(cfg, mode.concurrency)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			reportRate(b, last)
		})
	}
}

// BenchmarkE15RecorderOverhead measures the time-series flight
// recorder's per-tick cost at production scale: one SampleRegistry pass
// over a registry wide enough to produce ~500 recorded series (gauges,
// counter rates, histogram rate+quantiles). The budget is <1% of the 1s
// sampling interval — recording history must be free relative to moving
// bytes — reported as pct-of-1s-interval.
func BenchmarkE15RecorderOverhead(b *testing.B) {
	reg := obs.NewRegistry()
	// 200 gauges + 100 counters (".rate") + 50 histograms (".rate",
	// ".p50", ".p90", ".p99") = 500 series per sampling pass.
	for i := 0; i < 200; i++ {
		reg.Gauge(fmt.Sprintf("bench.gauge.%03d", i)).Set(int64(i))
	}
	for i := 0; i < 100; i++ {
		reg.Counter(fmt.Sprintf("bench.counter.%03d", i)).Add(int64(i))
	}
	bounds := []float64{0.001, 0.01, 0.1, 1, 10}
	for i := 0; i < 50; i++ {
		h := reg.Histogram(fmt.Sprintf("bench.hist.%02d", i), bounds)
		for j := 0; j < 8; j++ {
			h.Observe(float64(j) / 10)
		}
	}
	rec := tsdb.New(tsdb.Options{})
	now := time.Unix(1_700_000_000, 0)
	rec.SampleRegistry(reg, now) // baseline pass
	if n := len(rec.SeriesNames()); n < 200 {
		b.Fatalf("baseline recorded %d series", n)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Touch the registry so every pass sees fresh deltas, as a live
		// daemon's would.
		reg.Counter("bench.counter.000").Inc()
		now = now.Add(time.Second)
		rec.SampleRegistry(reg, now)
	}
	b.StopTimer()
	if n := len(rec.SeriesNames()); n < 500 {
		b.Fatalf("recorded %d series, want >= 500", n)
	}
	perPass := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perPass/1e9*100, "pct-of-1s-interval")
	b.ReportMetric(float64(len(rec.SeriesNames())), "series")
}

// BenchmarkAblationBlockSize sweeps MODE E block sizes.
func BenchmarkAblationBlockSize(b *testing.B) {
	cfg := experiments.AblationBlockSizeConfig{
		FileBytes: 4 << 20,
		Link:      netsim.LinkParams{Bandwidth: 60e6, RTT: 2 * time.Millisecond, StreamWindow: 1 << 22},
	}
	for _, bs := range []int{16 << 10, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("block-%dKiB", bs>>10), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.MeasureBlockSizeRate(cfg, bs)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			reportRate(b, last)
		})
	}
}

// BenchmarkAblationChannelCache measures data channel caching on vs off.
func BenchmarkAblationChannelCache(b *testing.B) {
	cfg := experiments.AblationCacheConfig{Files: 8, FileBytes: 32 << 10, RTT: 10 * time.Millisecond}
	for _, cached := range []bool{true, false} {
		name := "enabled"
		if !cached {
			name = "disabled"
		}
		b.Run(name, func(b *testing.B) {
			var last time.Duration
			for i := 0; i < b.N; i++ {
				d, err := experiments.MeasureCacheRun(cfg, cached)
				if err != nil {
					b.Fatal(err)
				}
				last = d
			}
			b.ReportMetric(float64(last.Milliseconds())/float64(cfg.Files), "ms/file")
		})
	}
}

// BenchmarkAblationAutotune measures the hosted service's parallelism
// auto-tuning against a fixed single stream (§VI.A).
func BenchmarkAblationAutotune(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationAutotune(experiments.AblationAutotuneConfig{
			FileBytes: 4 << 20,
			Link:      netsim.LinkParams{Bandwidth: 40e6, RTT: 10 * time.Millisecond, StreamWindow: 128 << 10},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTransport measures TCP vs UDT (via the XIO layer) on a
// lossy, high-RTT path (§II.A [9]).
func BenchmarkAblationTransport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationTransport(experiments.AblationTransportConfig{
			FileBytes: 2 << 20,
			Link: netsim.LinkParams{
				Bandwidth: 30e6, RTT: 20 * time.Millisecond, Loss: 0.001, StreamWindow: 64 << 10,
			},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16FleetAggregation measures the federation head's cost of
// one full fleet pass at scale: 100 instances × ~50 series each ingested
// (the push path minus HTTP), then one Tick — staleness sweep, counter
// and gauge merge, bucket-wise histogram merge across all 100 instances,
// recorder sampling of the aggregate, and an alert evaluation. The
// budget is <=5% of the 1s aggregation interval, reported as
// pct-of-1s-interval.
func BenchmarkE16FleetAggregation(b *testing.B) {
	const instances = 100
	// ~50 series per instance: identity gauge + 24 counters + 15 gauges +
	// 2 histograms (each a bucket set plus sum/count on the wire).
	snaps := make([]expfmt.Snapshot, instances)
	for i := range snaps {
		o := obs.Nop()
		reg := o.Registry()
		for c := 0; c < 24; c++ {
			reg.Counter(fmt.Sprintf("bench.fleet.counter.%02d", c)).Add(int64(i*100 + c))
		}
		for g := 0; g < 15; g++ {
			reg.Gauge(fmt.Sprintf("bench.fleet.gauge.%02d", g)).Set(int64(i + g))
		}
		for h := 0; h < 2; h++ {
			hist := reg.Histogram(fmt.Sprintf("bench.fleet.hist.%d", h), obs.DefaultDurationBuckets)
			for j := 0; j < 16; j++ {
				hist.ObserveExemplar(float64(j)/20, fmt.Sprintf("%032x", i*16+j))
			}
		}
		snaps[i] = expfmt.SnapshotRegistry(reg)
	}

	now := time.Unix(1_700_000_000, 0)
	svc := fleet.New(fleet.Options{Obs: obs.Nop(), Now: func() time.Time { return now }})

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		now = now.Add(time.Second)
		for i, snap := range snaps {
			if err := svc.Ingest(fmt.Sprintf("inst-%03d", i), "", snap, now); err != nil {
				b.Fatal(err)
			}
		}
		svc.Tick(now)
	}
	b.StopTimer()

	if got := len(svc.Instances()); got != instances {
		b.Fatalf("registry has %d instances, want %d", got, instances)
	}
	perPass := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perPass/1e9*100, "pct-of-1s-interval")
}

// BenchmarkE17ProfilerOverhead measures the continuous profiler's cost
// per capture window: heap, mutex, block, and goroutine capture, gzip
// pprof parsing, table building, and regression analysis against the
// previous window. CPU sampling is disabled here because its cost is a
// fixed wall-clock *sleep* while the runtime samples at ~100 Hz — wall
// time a wall-clock benchmark would misread as work. The always-on
// budget is <=1% of the default 10 s capture interval, reported as
// pct-of-10s-interval.
func BenchmarkE17ProfilerOverhead(b *testing.B) {
	prof := profile.New(profile.Options{
		Interval:    10 * time.Second,
		CPUDuration: -1,
		Obs:         obs.Nop(),
	})
	if _, err := prof.CaptureOnce(); err != nil { // baseline window
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prof.CaptureOnce(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	if _, ok := prof.ProfileSummary(); !ok {
		b.Fatal("profiler produced no summary")
	}
	perPass := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perPass/10e9*100, "pct-of-10s-interval")
}

// BenchmarkE18StreamTelemetryOverhead prices the data-path X-ray: the
// same shaped-WAN parallel download with per-stream wire telemetry fully
// installed (both data-path ends instrumented, poller live at the
// daemons' default cadence) versus absent. The instrumented path adds
// two atomic updates per Read/Write against 128 KiB-scale blocks, so the
// budget is <=1% of achieved throughput — the deployment question is
// whether watching the wire slows the wire. The link is shaped (40 MB/s,
// wide windows) so pacing pins the transfer time and a genuine slowdown
// would surface as missed pacing slots rather than scheduler jitter;
// each side is best-of-paired-runs, which only ever discards runs the
// OS slowed down. pct-overhead reports the measured loss (small
// negative values are residual noise in the instrumented run's favor).
func BenchmarkE18StreamTelemetryOverhead(b *testing.B) {
	link := netsim.LinkParams{
		Bandwidth:    40e6,
		RTT:          2 * time.Millisecond,
		StreamWindow: 1 << 22,
	}
	const fileBytes = 8 << 20
	const parallelism = 4
	const pairs = 3
	var onBest, offBest float64
	for i := 0; i < b.N; i++ {
		onBest, offBest = 0, 0
		for p := 0; p < pairs; p++ {
			off, err := experiments.MeasureStreamTelemetryRate(link, fileBytes, parallelism, nil)
			if err != nil {
				b.Fatal(err)
			}
			reg := streamstats.New(streamstats.Options{Obs: obs.Nop(), Interval: 500 * time.Millisecond})
			on, err := experiments.MeasureStreamTelemetryRate(link, fileBytes, parallelism, reg)
			reg.Close()
			if err != nil {
				b.Fatal(err)
			}
			if on > onBest {
				onBest = on
			}
			if off > offBest {
				offBest = off
			}
		}
	}
	reportRate(b, onBest)
	pct := (offBest - onBest) / offBest * 100
	b.ReportMetric(pct, "pct-overhead")
}

// BenchmarkE20TenantAttributionOverhead prices per-DN tenant
// accounting on the E2/p16 path: the reference shaped-WAN 16-stream
// download with the accounting plane fully installed on the server
// (every command and transferred byte attributed to the session DN,
// publisher live at the daemons' default cadence) versus absent. The
// accounting hot path is one mutex-guarded sketch touch per command
// and per transfer completion — against a megabyte-scale transfer the
// budget is <=1% of achieved throughput. Paired best-of runs like E18;
// small negative pct-overhead values are residual noise in the
// instrumented run's favor.
func BenchmarkE20TenantAttributionOverhead(b *testing.B) {
	const parallelism = 16
	const pairs = 3
	var onBest, offBest float64
	for i := 0; i < b.N; i++ {
		onBest, offBest = 0, 0
		for p := 0; p < pairs; p++ {
			off, err := experiments.MeasureTenantAttributionRate(benchLink, benchFileBytes, parallelism, nil)
			if err != nil {
				b.Fatal(err)
			}
			acct := tenant.New(tenant.Options{Obs: obs.Nop()})
			on, err := experiments.MeasureTenantAttributionRate(benchLink, benchFileBytes, parallelism, acct)
			if err != nil {
				b.Fatal(err)
			}
			if on > onBest {
				onBest = on
			}
			if off > offBest {
				offBest = off
			}
		}
	}
	reportRate(b, onBest)
	pct := (offBest - onBest) / offBest * 100
	b.ReportMetric(pct, "pct-overhead")
}

// BenchmarkE19DataPath isolates the MODE E framing data path: one sender
// streaming blocks to one receiver over a real TCP loopback socket and
// over an unshaped netsim conn, in the historical form (fresh payload
// buffer per block, header and payload as separate writes, per-block
// receive allocation) and the fast-path form (pooled block buffers,
// batched/vectored writes, pooled receive). The fast/legacy delta is the
// PR's framing win with the protocol, crypto, and disk kept out of frame.
func BenchmarkE19DataPath(b *testing.B) {
	const totalBytes = 16 << 20
	const blockSize = gridftp.DefaultBlockSize

	run := func(b *testing.B, dial func() (net.Conn, net.Conn, error), fast bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			src, dst, err := dial()
			if err != nil {
				b.Fatal(err)
			}
			errCh := make(chan error, 1)
			go func() {
				errCh <- gridftp.SendBenchBlocks(src, totalBytes, blockSize, fast)
			}()
			start := time.Now()
			got, err := gridftp.RecvBenchBlocks(dst, blockSize, fast)
			elapsed := time.Since(start)
			if err != nil {
				b.Fatal(err)
			}
			if serr := <-errCh; serr != nil {
				b.Fatal(serr)
			}
			if got != totalBytes {
				b.Fatalf("received %d bytes, want %d", got, totalBytes)
			}
			src.Close()
			dst.Close()
			reportRate(b, totalBytes/elapsed.Seconds())
		}
	}

	tcpPair := func() (net.Conn, net.Conn, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		defer l.Close()
		type accepted struct {
			c   net.Conn
			err error
		}
		ch := make(chan accepted, 1)
		go func() {
			c, err := l.Accept()
			ch <- accepted{c, err}
		}()
		src, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		a := <-ch
		if a.err != nil {
			src.Close()
			return nil, nil, a.err
		}
		return src, a.c, nil
	}

	simPair := func() (net.Conn, net.Conn, error) {
		nw := netsim.NewNetwork()
		nw.SetDefaultLink(netsim.LinkParams{}) // unshaped: framing is the bottleneck
		l, err := nw.Listen("dst", 2811)
		if err != nil {
			return nil, nil, err
		}
		defer l.Close()
		type accepted struct {
			c   net.Conn
			err error
		}
		ch := make(chan accepted, 1)
		go func() {
			c, err := l.Accept()
			ch <- accepted{c, err}
		}()
		src, err := nw.Dial("src", "dst:2811")
		if err != nil {
			return nil, nil, err
		}
		a := <-ch
		if a.err != nil {
			src.Close()
			return nil, nil, a.err
		}
		return src, a.c, nil
	}

	b.Run("tcp-legacy", func(b *testing.B) { run(b, tcpPair, false) })
	b.Run("tcp-fast", func(b *testing.B) { run(b, tcpPair, true) })
	b.Run("netsim-legacy", func(b *testing.B) { run(b, simPair, false) })
	b.Run("netsim-fast", func(b *testing.B) { run(b, simPair, true) })
}
