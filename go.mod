module gridftp.dev/instant

go 1.22
