// Command transfer-service demonstrates the Globus Online-style hosted
// service (§VI): it installs two GCMU endpoints in different trust
// domains, registers them with the service, activates them (password or
// OAuth), submits a third-party transfer — applying DCSC across the CA
// boundary automatically — and, with -fault, injects a mid-transfer
// failure to show checkpoint restart.
//
// Usage:
//
//	transfer-service [-size 8M] [-files 1] [-fault] [-oauth] [-verbose] [-metrics]
//	                 [-concurrency 0] [-max-active 32] [-marker-interval 25ms]
//	                 [-admin 127.0.0.1:9971] [-collector http://host/v1/spans]
//	                 [-fleet] [-fleet-scrape name=url,...] [-fleet-bundle-dir dir]
//	                 [-fleet-push http://head/v1/metrics] [-fleet-instance name]
//	                 [-profile-interval 10s] [-profile-retain 5m]
//	                 [-stall-timeout 0]
//
// With -files N (N > 1), the demo transfers a directory of N files of
// -size each, exercising the concurrent scheduler: -concurrency pins the
// per-task worker fan-out (0 = auto-sized from file count and RTT),
// -max-active bounds in-flight file transfers service-wide, and
// -marker-interval sets the restart/perf marker cadence.
//
// With -admin, the HTTP admin plane (Prometheus /metrics, /debug/events,
// ...) is served on the given address and the process holds after the
// demo transfer until SIGINT/SIGTERM.
//
// With -fleet (or -fleet-scrape / -fleet-bundle-dir), the admin plane
// additionally acts as the fleet federation head: other processes push
// their expfmt snapshots to /v1/metrics (see -fleet-push), the head
// merges them into fleet-wide aggregates under /fleet/metrics, and
// firing fleet alerts capture diagnostic bundles into -fleet-bundle-dir.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gridftp.dev/instant/internal/admin"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/oauth"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/collector"
	"gridftp.dev/instant/internal/obs/fleet"
	"gridftp.dev/instant/internal/obs/profile"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/obs/tenant"
	"gridftp.dev/instant/internal/pam"
	"gridftp.dev/instant/internal/transfer"
)

func main() {
	sizeStr := flag.String("size", "8M", "transfer size (per file with -files)")
	files := flag.Int("files", 1, "number of files; > 1 transfers a directory through the scheduler")
	concurrency := flag.Int("concurrency", 0, "per-task worker session pairs (0 = auto-size from file count and RTT)")
	maxActive := flag.Int("max-active", 0, "service-wide cap on in-flight file transfers (0 = default 32)")
	markerInterval := flag.Duration("marker-interval", 25*time.Millisecond, "restart/perf marker cadence requested from destination servers")
	fault := flag.Bool("fault", false, "inject a receive-side fault at 60% and recover")
	useOAuth := flag.Bool("oauth", false, "activate endpoints via OAuth instead of passwords")
	verbose := flag.Bool("verbose", false, "structured debug logging to stderr")
	metrics := flag.Bool("metrics", false, "dump the metrics/span snapshot on exit")
	adminAddr := flag.String("admin", "", "serve the HTTP admin plane on this address and hold until interrupted")
	collectorURL := flag.String("collector", "", "push completed spans to this collector /v1/spans URL on exit")
	fleetHead := flag.Bool("fleet", false, "act as the fleet federation head (requires -admin): accept pushes on /v1/metrics, serve /fleet/*")
	fleetScrape := flag.String("fleet-scrape", "", "comma-separated name=url /metrics endpoints the fleet head scrapes (implies -fleet)")
	fleetBundleDir := flag.String("fleet-bundle-dir", "", "directory for alert-triggered diagnostic bundles (implies -fleet)")
	fleetPush := flag.String("fleet-push", "", "push this process's metrics to a fleet head's /v1/metrics URL")
	fleetInstance := flag.String("fleet-instance", "transfer-service", "instance name for -fleet-push")
	fleetPushInterval := flag.Duration("fleet-push-interval", time.Second, "push cadence for -fleet-push")
	profileInterval := flag.Duration("profile-interval", 10*time.Second, "continuous profiler capture cadence (0 disables); runs when -admin or -fleet-push is set")
	profileRetain := flag.Duration("profile-retain", 5*time.Minute, "how long raw continuous-profile captures are retained (summaries persist ~2h)")
	stallTimeout := flag.Duration("stall-timeout", 0, "abort a data stream making no progress for this long and retry from checkpoint (0 disables the stall watchdog)")
	flag.Parse()
	o := obs.FromEnv()
	if *verbose {
		o = obs.New(os.Stderr, obs.LevelDebug)
	}
	err := run(runOptions{
		sizeStr:           *sizeStr,
		files:             *files,
		concurrency:       *concurrency,
		maxActive:         *maxActive,
		markerInterval:    *markerInterval,
		fault:             *fault,
		useOAuth:          *useOAuth,
		adminAddr:         *adminAddr,
		fleetHead:         *fleetHead || *fleetScrape != "" || *fleetBundleDir != "",
		fleetScrape:       *fleetScrape,
		fleetBundleDir:    *fleetBundleDir,
		fleetPush:         *fleetPush,
		fleetInstance:     *fleetInstance,
		fleetPushInterval: *fleetPushInterval,
		profileInterval:   *profileInterval,
		profileRetain:     *profileRetain,
		stallTimeout:      *stallTimeout,
	}, o)
	if *metrics {
		fmt.Fprint(os.Stderr, o.DebugSnapshot())
	}
	if *collectorURL != "" {
		// Best-effort: a dead collector must not fail the demo run.
		if perr := collector.Push(*collectorURL, "transfer-service", o.Tracer().Spans()); perr != nil {
			fmt.Fprintf(os.Stderr, "span export: %v\n", perr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
}

func parseSize(s string) int {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	}
	n, _ := strconv.Atoi(s)
	if n <= 0 {
		n = 8
		mult = 1 << 20
	}
	return n * mult
}

type runOptions struct {
	sizeStr           string
	files             int
	concurrency       int
	maxActive         int
	markerInterval    time.Duration
	fault             bool
	useOAuth          bool
	adminAddr         string
	fleetHead         bool
	fleetScrape       string
	fleetBundleDir    string
	fleetPush         string
	fleetInstance     string
	fleetPushInterval time.Duration
	profileInterval   time.Duration
	profileRetain     time.Duration
	stallTimeout      time.Duration
}

func run(opts runOptions, o *obs.Obs) error {
	sizeStr := opts.sizeStr
	fault, useOAuth, adminAddr := opts.fault, opts.useOAuth, opts.adminAddr
	size := parseSize(sizeStr)
	if opts.files < 1 {
		opts.files = 1
	}
	nw := netsim.NewNetwork()

	// Continuous profiler: always-on capture whenever anything can read
	// it — the admin plane's /debug/profile/continuous or a fleet head
	// via the pusher's /v1/profile summaries.
	var prof *profile.Profiler
	if opts.profileInterval > 0 && (adminAddr != "" || opts.fleetPush != "") {
		prof = profile.New(profile.Options{
			Interval: opts.profileInterval,
			Recent:   int(opts.profileRetain / opts.profileInterval),
			Obs:      o,
		})
		o.Profile = prof
		prof.Start()
		defer prof.Stop()
	}

	// Stream-telemetry plane: one registry shared by both endpoints and
	// the scheduler, so per-stream wire telemetry, the stall watchdog, and
	// the scheduler's per-attempt wire evidence all read the same state.
	streams := streamstats.New(streamstats.Options{
		Obs:          o,
		Stall:        opts.stallTimeout,
		AbortOnStall: opts.stallTimeout > 0,
	})
	defer streams.Close()

	// Tenant accounting plane: one accountant shared by both endpoints
	// and the scheduler attributes every task, queue wait, command, and
	// data byte to the submitting credential DN; the publisher feeds the
	// bounded tenant.<hash>.* series behind /tenants and the dashboard.
	tenants := tenant.New(tenant.Options{Obs: o})
	stopTenants := tenants.Start()
	defer stopTenants()

	var adm *admin.Server
	if adminAddr != "" {
		adm = admin.New(o)
		adm.SetStreamStats(streams)
		adm.SetTenants(tenants)
		// Recorder + alert engine + live stream: the queue-wait burn-rate
		// rule in tsdb.DefaultRules watches this very service's admission
		// semaphore.
		stopTelemetry := adm.EnableTelemetry(o, nil)
		defer stopTelemetry()
		if prof != nil {
			adm.SetProfiler(prof)
		}
		addr, err := adm.ListenAndServe(adminAddr)
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Printf("admin plane: http://%s/\n", addr)

		if opts.fleetHead {
			// Federation head: accept expfmt pushes on /v1/metrics, scrape
			// any configured peers, and serve fleet aggregates, alerts, and
			// diagnostic bundles under /fleet/*.
			fl := fleet.New(fleet.Options{
				Obs:    o,
				Bundle: fleet.BundleOptions{Dir: opts.fleetBundleDir},
			})
			for _, target := range strings.Split(opts.fleetScrape, ",") {
				target = strings.TrimSpace(target)
				if target == "" {
					continue
				}
				name, url, ok := strings.Cut(target, "=")
				if !ok {
					return fmt.Errorf("-fleet-scrape: want name=url, got %q", target)
				}
				fl.AddScrapeTarget(name, url)
			}
			stopFleet := fl.Start()
			defer stopFleet()
			adm.SetFleet(fl.Handler())
			fmt.Printf("fleet head: push to http://%s/v1/metrics, browse http://%s/fleet/metrics\n", addr, addr)
		}
	}
	if opts.fleetPush != "" {
		stopPush := fleet.StartPusher(opts.fleetPush, opts.fleetInstance, o, tenants, opts.fleetPushInterval)
		defer stopPush()
	}

	install := func(name, pw string) (*gcmu.Endpoint, *dsi.FaultStorage, error) {
		dir := pam.NewLDAPDirectory("dc=" + name)
		dir.AddEntry("alice", pw)
		accounts := pam.NewAccountDB()
		accounts.Add(pam.Account{Name: "alice"})
		stack := pam.NewStack("myproxy", accounts,
			pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
		mem := dsi.NewMemStorage()
		mem.AddUser("alice")
		faulty := dsi.NewFaultStorage(mem)
		ep, err := gcmu.Install(gcmu.Options{
			Name: name, Host: nw.Host(name), Auth: stack, Accounts: accounts,
			Storage: faulty, WithOAuth: useOAuth, MarkerInterval: 25 * time.Millisecond,
			Obs: o, Streams: streams, Tenants: tenants,
		})
		return ep, faulty, err
	}

	fmt.Println("installing GCMU endpoints siteA and siteB (independent CAs)...")
	epA, _, err := install("siteA", "pwA")
	if err != nil {
		return err
	}
	defer epA.Close()
	epB, faultB, err := install("siteB", "pwB")
	if err != nil {
		return err
	}
	defer epB.Close()

	svc := transfer.NewService(nw.Host("globusonline"), transfer.Config{
		RetryDelay:         25 * time.Millisecond,
		TaskConcurrency:    opts.concurrency,
		MaxActiveTransfers: opts.maxActive,
		MarkerInterval:     opts.markerInterval,
		Obs:                o,
		Streams:            streams,
		Tenants:            tenants,
	})
	for _, ep := range []*gcmu.Endpoint{epA, epB} {
		if err := svc.RegisterEndpoint(transfer.Endpoint{
			Name: ep.Name, GridFTPAddr: ep.GridFTPAddr, MyProxyAddr: ep.MyProxyAddr,
			OAuthAddr: ep.OAuthAddr, Trust: ep.Trust, CADN: ep.SigningCA.DN(),
		}); err != nil {
			return err
		}
		if ep.OAuth != nil {
			ep.OAuth.RegisterClient(transfer.OAuthClient)
		}
		fmt.Printf("  registered endpoint %s (CA %s)\n", ep.Name, ep.SigningCA.DN())
	}

	fmt.Println("\nactivating endpoints...")
	if useOAuth {
		login := func(ep *gcmu.Endpoint, pw string) transfer.UserLoginFunc {
			return func(base, session string) (string, error) {
				userHTTP := oauth.HTTPClient(nw.Host("laptop"), ep.Trust)
				return oauth.Login(userHTTP, base, session, "alice", pw)
			}
		}
		if err := svc.ActivateWithOAuth("siteA", "alice", login(epA, "pwA")); err != nil {
			return err
		}
		if err := svc.ActivateWithOAuth("siteB", "alice", login(epB, "pwB")); err != nil {
			return err
		}
		fmt.Printf("  OAuth activation: passwords seen by the service = %d (Fig 7)\n", svc.PasswordsSeen)
	} else {
		if err := svc.ActivateWithPassword("siteA", "alice", "pwA"); err != nil {
			return err
		}
		if err := svc.ActivateWithPassword("siteB", "alice", "pwB"); err != nil {
			return err
		}
		fmt.Printf("  password activation: passwords seen by the service = %d (Fig 6)\n", svc.PasswordsSeen)
	}

	// Seed the source: one file, or a directory of -files files.
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	srcPath, dstPath := "/dataset.bin", "/dataset.bin"
	if opts.files > 1 {
		srcPath, dstPath = "/dataset", "/dataset"
		if err := epA.Storage.Mkdir("alice", srcPath); err != nil {
			return err
		}
	}
	for i := 0; i < opts.files; i++ {
		path := srcPath
		if opts.files > 1 {
			path = fmt.Sprintf("%s/f%03d.bin", srcPath, i)
		}
		f, err := epA.Storage.Create("alice", path)
		if err != nil {
			return err
		}
		dsi.WriteAll(f, payload)
		f.Close()
	}

	if fault {
		faultB.Arm(int64(float64(size) * 0.6))
		fmt.Printf("\nfault armed: site B's storage will fail after %d bytes\n", int(float64(size)*0.6))
	}

	if opts.files > 1 {
		fmt.Printf("\nsubmitting directory transfer siteA:%s -> siteB:%s (%d x %s)...\n",
			srcPath, dstPath, opts.files, sizeStr)
	} else {
		fmt.Printf("\nsubmitting third-party transfer siteA:%s -> siteB:%s (%s)...\n", srcPath, dstPath, sizeStr)
	}
	task, err := svc.Submit("alice", "siteA", srcPath, "siteB", dstPath)
	if err != nil {
		return err
	}
	done, err := svc.Wait(task.ID, 2*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("\ntask %s: %s\n", done.ID, done.Status)
	fmt.Printf("  attempts:        %d\n", done.Attempts)
	fmt.Printf("  parallelism:     %d (auto-tuned for %s)\n", done.Parallelism, sizeStr)
	if opts.files > 1 {
		fmt.Printf("  scheduler:       %d worker session pairs, %d/%d files\n",
			done.Workers, done.CompletedFiles, done.TotalFiles)
	}
	fmt.Printf("  bytes moved:     %d (payload %d)\n", done.BytesTransferred, size*opts.files)
	fmt.Printf("  perf markers:    %d observed in flight (last total %d bytes)\n", done.PerfMarkers, done.PerfBytes)
	if done.Attempts > 1 && opts.files == 1 {
		saved := int64(done.Attempts)*int64(size) - done.BytesTransferred
		fmt.Printf("  checkpointing:   restart markers avoided resending ~%d bytes\n", saved)
	}
	fmt.Printf("  cross-CA DCSC:   applied automatically (site CAs differ)\n")
	if done.Error != "" {
		return fmt.Errorf("task failed: %s", done.Error)
	}
	// Verify content (the single file, or the last file of the directory).
	verifyPath := dstPath
	if opts.files > 1 {
		verifyPath = fmt.Sprintf("%s/f%03d.bin", dstPath, opts.files-1)
	}
	g, err := epB.Storage.Open("alice", verifyPath)
	if err != nil {
		return err
	}
	got, err := dsi.ReadAll(g)
	g.Close()
	if err != nil {
		return err
	}
	if len(got) != len(payload) {
		return fmt.Errorf("verification failed: %d of %d bytes", len(got), len(payload))
	}
	fmt.Println("  verification:    destination content matches")
	if adm != nil {
		fmt.Printf("\nholding for scrapes (curl http://%s/metrics); Ctrl-C to exit\n", adm.Addr())
		admin.AwaitInterrupt()
	}
	return nil
}
