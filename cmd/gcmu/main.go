// Command gcmu prints and executes the GCMU setup story (§III vs §IV):
// it lists the conventional multi-step GridFTP installation next to the
// four-command GCMU install, then performs a live install plus first
// transfer and reports the elapsed time.
//
// Usage:
//
//	gcmu steps                      # print the setup-step comparison
//	gcmu install [-admin ADDR]      # perform a live install + first transfer
//	gcmu console [-admin ADDR]      # install + drive the web admin console (§VIII)
//
// With -admin, install/console serve the HTTP admin plane (Prometheus
// /metrics, /debug/events, ...) on ADDR and hold until SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gridftp.dev/instant/internal/admin"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/pam"
)

func main() {
	cmd := "steps"
	args := os.Args[1:]
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd = args[0]
		args = args[1:]
	}
	fs := flag.NewFlagSet("gcmu "+cmd, flag.ExitOnError)
	adminAddr := fs.String("admin", "", "serve the HTTP admin plane on this address and hold until interrupted")
	fs.Parse(args)

	o := obs.FromEnv()
	var err error
	switch cmd {
	case "steps":
		err = steps()
	case "install":
		err = install(*adminAddr, o)
	case "console":
		err = console(*adminAddr, o)
	default:
		fmt.Fprintf(os.Stderr, "usage: gcmu [steps|install|console] [-admin ADDR]\n")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
}

// startAdmin brings up the admin plane when addr is non-empty; the
// returned hold func blocks until interrupt (and is a no-op otherwise).
func startAdmin(addr string, o *obs.Obs) (hold func(), cleanup func(), err error) {
	if addr == "" {
		return func() {}, func() {}, nil
	}
	adm := admin.New(o)
	stopTelemetry := adm.EnableTelemetry(o, nil)
	bound, err := adm.ListenAndServe(addr)
	if err != nil {
		stopTelemetry()
		return nil, nil, err
	}
	fmt.Printf("admin plane: http://%s/\n", bound)
	hold = func() {
		fmt.Printf("\nholding for scrapes (curl http://%s/metrics); Ctrl-C to exit\n", bound)
		admin.AwaitInterrupt()
	}
	return hold, func() { adm.Close(); stopTelemetry() }, nil
}

func printSteps(title string, list []gcmu.Step) {
	fmt.Printf("%s\n", title)
	for i, s := range list {
		fmt.Printf("  %2d. [%-11s ~%-8v] %s  (%s)\n", i+1, s.Kind, s.Latency, s.Name, s.Section)
	}
	sum := gcmu.Summarize(list)
	fmt.Printf("      => %d steps, %d manual, %d out-of-band, ~%v total\n\n",
		sum.Steps, sum.Manual, sum.OutOfBand, sum.TotalTime)
}

func steps() error {
	fmt.Println("Conventional GridFTP deployment (paper §III.A):")
	fmt.Println()
	printSteps("server installation + security configuration:", gcmu.ConventionalServerSetup())
	printSteps("per-user security configuration:", gcmu.ConventionalUserSetup())
	fmt.Println("GCMU (paper §IV.D/E):")
	fmt.Println()
	printSteps("server:", gcmu.GCMUServerSetup())
	printSteps("client:", gcmu.GCMUClientSetup())
	conv := gcmu.Summarize(append(gcmu.ConventionalServerSetup(), gcmu.ConventionalUserSetup()...))
	fast := gcmu.Summarize(append(gcmu.GCMUServerSetup(), gcmu.GCMUClientSetup()...))
	fmt.Printf("time-to-first-transfer: conventional ~%v vs GCMU ~%v (%.0fx)\n",
		conv.TotalTime, fast.TotalTime, float64(conv.TotalTime)/float64(fast.TotalTime))
	return nil
}

func install(adminAddr string, o *obs.Obs) error {
	hold, cleanup, err := startAdmin(adminAddr, o)
	if err != nil {
		return err
	}
	defer cleanup()
	nw := netsim.NewNetwork()
	dir := pam.NewLDAPDirectory("dc=siteA")
	dir.AddEntry("alice", "secret")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	stack := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})

	fmt.Println("$ wget https://.../globusconnect-multiuser-latest.tgz")
	fmt.Println("$ tar -xvzf globusconnect-multiuser-latest.tgz")
	fmt.Println("$ cd gcmu*")
	fmt.Println("$ sudo ./install")
	start := time.Now()
	ep, err := gcmu.Install(gcmu.Options{
		Name: "siteA", Host: nw.Host("siteA"), Auth: stack, Accounts: accounts,
		Obs: o,
	})
	if err != nil {
		return err
	}
	defer ep.Close()
	fmt.Printf("  created site CA:        %s\n", ep.SigningCA.DN())
	fmt.Printf("  started myproxy server: %s\n", ep.MyProxyAddr)
	fmt.Printf("  started gridftp server: %s\n", ep.GridFTPAddr)
	fmt.Printf("  authz callout:          username parsed from DN (no gridmap)\n")

	fmt.Println("\n$ myproxy-logon -b -T -s siteA  (password: ******)")
	fmt.Println("$ globus-url-copy file:/data.bin gsiftp://siteA/data.bin")
	client, err := ep.Connect(nw.Host("laptop"), "alice", pam.PasswordConv("secret"))
	if err != nil {
		return err
	}
	defer client.Close()
	payload := make([]byte, 1<<20)
	if _, err := client.Put("/data.bin", dsi.NewBufferFile(payload)); err != nil {
		return err
	}
	fmt.Printf("\ninstant GridFTP: install -> credential -> first transfer in %v\n",
		time.Since(start).Round(time.Millisecond))
	hold()
	return nil
}

// console installs an endpoint, starts the §VIII admin console, and
// exercises it: status, account provisioning, locking.
func console(adminAddr string, o *obs.Obs) error {
	hold, cleanup, err := startAdmin(adminAddr, o)
	if err != nil {
		return err
	}
	defer cleanup()
	nw := netsim.NewNetwork()
	dir := pam.NewLDAPDirectory("dc=siteA")
	dir.AddEntry("alice", "secret")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	stack := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
	ep, err := gcmu.Install(gcmu.Options{
		Name: "siteA", Host: nw.Host("siteA"), Auth: stack, Accounts: accounts,
		Obs: o,
	})
	if err != nil {
		return err
	}
	defer ep.Close()
	adminConsole := &gcmu.Console{Endpoint: ep, Token: "demo-admin-token"}
	addr, err := adminConsole.ListenAndServe(8443)
	if err != nil {
		return err
	}
	defer adminConsole.Close()
	base := "https://" + addr.String()
	fmt.Printf("admin console up at %s (Bearer demo-admin-token)\n\n", base)

	hc := gcmu.ConsoleHTTPClient(nw.Host("admin-laptop"), ep)
	call := func(method, path string, body string) {
		var rdr io.Reader
		if body != "" {
			rdr = strings.NewReader(body)
		}
		req, _ := http.NewRequest(method, base+path, rdr)
		req.Header.Set("Authorization", "Bearer demo-admin-token")
		resp, err := hc.Do(req)
		if err != nil {
			fmt.Printf("  %s %s -> error: %v\n", method, path, err)
			return
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("$ curl -X %s %s%s %s\n  %s\n", method, base, path, body, strings.TrimSpace(string(out)))
	}
	call("GET", "/status", "")
	call("POST", "/accounts", `{"name":"bob"}`)
	call("GET", "/accounts", "")
	call("POST", "/accounts/lock", `{"name":"bob","locked":true}`)
	hold()
	return nil
}
