// Command globus-url-copy is a WAN transfer workbench in the spirit of
// the Globus client of the same name: it builds a two-site world on the
// simulated network, seeds a file, and copies it with the requested
// transfer options, reporting throughput — including third-party
// (server-to-server) copies with DCSC across CA boundaries.
//
// Usage examples:
//
//	globus-url-copy -size 16M -p 8 -rtt 50ms -bw 40M
//	globus-url-copy -thirdparty -dcsc -size 8M
//	globus-url-copy -mode S -prot P -size 4M
//	globus-url-copy gsiftp://siteA/data.bin file:/out.bin
//	globus-url-copy -dcsc gsiftp://siteA/data.bin gsiftp://siteB/data.bin
//
// When two URL arguments are given they select the direction: file: to
// gsiftp: uploads, gsiftp: to file: downloads, gsiftp: to gsiftp: runs a
// third-party transfer (add -dcsc when the sites' CAs differ).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gridftp.dev/instant/internal/admin"
	"gridftp.dev/instant/internal/authz"
	"gridftp.dev/instant/internal/baseline"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gridftp"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/collector"
	"gridftp.dev/instant/internal/obs/streamstats"
	"gridftp.dev/instant/internal/pam"
)

func main() {
	size := flag.String("size", "8M", "file size (supports K/M/G suffixes)")
	parallel := flag.Int("p", 4, "parallel data streams (-p of globus-url-copy)")
	rtt := flag.Duration("rtt", 50*time.Millisecond, "link round-trip time")
	bw := flag.String("bw", "40M", "link bandwidth, bytes/sec")
	window := flag.String("window", "64K", "per-stream TCP window")
	loss := flag.Float64("loss", 0, "packet loss probability (e.g. 0.001)")
	mode := flag.String("mode", "E", "transfer mode: E (extended block) or S (stream)")
	prot := flag.String("prot", "C", "data protection: C (clear), S (safe), P (private)")
	thirdparty := flag.Bool("thirdparty", false, "server-to-server transfer between two sites")
	dcsc := flag.Bool("dcsc", false, "use DCSC for the cross-CA third-party data channel")
	lite := flag.Bool("lite", false, "use GridFTP-Lite (sshftp://): SSH-tunneled control channel, no data security")
	adminAddr := flag.String("admin", "", "serve the HTTP admin plane on this address and hold after the copy until interrupted")
	collectorURL := flag.String("collector", "", "push completed spans to this collector /v1/spans URL on exit")
	stallTimeout := flag.Duration("stall-timeout", 0, "abort a data stream making no progress for this long (0 disables the stall watchdog)")
	flag.Parse()

	// URL arguments override the -thirdparty flag and direction.
	if flag.NArg() == 2 {
		src, err := gridftp.ParseURL(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(2)
		}
		dst, err := gridftp.ParseURL(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(2)
		}
		switch {
		case !src.IsLocal() && !dst.IsLocal():
			*thirdparty = true
		case src.IsLocal() && dst.IsLocal():
			fmt.Fprintln(os.Stderr, "error: one side must be a gsiftp:// or sshftp:// URL")
			os.Exit(2)
		}
		if src.Scheme == "sshftp" || dst.Scheme == "sshftp" {
			*lite = true
		}
	} else if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: globus-url-copy [flags] [srcURL dstURL]")
		os.Exit(2)
	}

	o := obs.FromEnv()
	err := run(*size, *parallel, *rtt, *bw, *window, *loss, *mode, *prot, *thirdparty, *dcsc, *lite, *adminAddr, *stallTimeout, o)
	if *collectorURL != "" {
		// Best-effort: a dead collector must not fail the copy.
		if perr := collector.Push(*collectorURL, "globus-url-copy", o.Tracer().Spans()); perr != nil {
			fmt.Fprintf(os.Stderr, "span export: %v\n", perr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func run(sizeStr string, parallel int, rtt time.Duration, bwStr, windowStr string, loss float64, modeStr, protStr string, thirdparty, dcsc, lite bool, adminAddr string, stallTimeout time.Duration, o *obs.Obs) error {
	size, err := parseSize(sizeStr)
	if err != nil {
		return err
	}
	bw, err := parseSize(bwStr)
	if err != nil {
		return err
	}
	window, err := parseSize(windowStr)
	if err != nil {
		return err
	}
	link := netsim.LinkParams{
		Bandwidth: float64(bw), RTT: rtt, Loss: loss, StreamWindow: window,
	}
	nw := netsim.NewNetwork()
	nw.SetDefaultLink(link)

	// Stream-telemetry plane: both sites and the client share one
	// registry so a third-party copy shows both legs in one table.
	streams := streamstats.New(streamstats.Options{
		Obs:          o,
		Stall:        stallTimeout,
		AbortOnStall: stallTimeout > 0,
	})
	defer streams.Close()

	// With -admin, the workbench exposes the same telemetry plane as the
	// daemons — metrics, PERF-marker timelines (/debug/timeseries), SLO
	// alerts, the SSE live feed — and holds after the copy so an operator
	// or the benchreport dashboard can inspect the run.
	hold := func() {}
	if adminAddr != "" {
		adm := admin.New(o)
		adm.SetStreamStats(streams)
		stopTelemetry := adm.EnableTelemetry(o, nil)
		defer stopTelemetry()
		addr, aerr := adm.ListenAndServe(adminAddr)
		if aerr != nil {
			return aerr
		}
		defer adm.Close()
		fmt.Printf("admin plane: http://%s/\n", addr)
		hold = func() {
			fmt.Printf("\nholding for scrapes (benchreport -dashboard http://%s); Ctrl-C to exit\n", addr)
			admin.AwaitInterrupt()
		}
	}

	if lite {
		if err := runLite(nw, size, parallel, o); err != nil {
			return err
		}
		hold()
		return nil
	}

	siteA, err := buildSite(nw, "siteA", o, streams)
	if err != nil {
		return err
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := siteA.putFile("/data.bin", payload); err != nil {
		return err
	}

	fmt.Printf("link: %s bandwidth, %v RTT, %.3f%% loss, %s window (per-stream cap %s)\n",
		bwStr, rtt, loss*100, windowStr, fmtRate(link.StreamCap()))
	fmt.Printf("file: %s, streams: %d, mode: %s, prot: %s\n\n", sizeStr, parallel, modeStr, protStr)

	if thirdparty {
		if err := runThirdParty(nw, siteA, size, parallel, dcsc, o); err != nil {
			return err
		}
		hold()
		return nil
	}

	client, err := siteA.connect(nw.Host("laptop"))
	if err != nil {
		return err
	}
	defer client.Close()
	if strings.EqualFold(modeStr, "S") {
		if err := client.SetMode(gridftp.ModeStream); err != nil {
			return err
		}
	} else if err := client.SetParallelism(parallel); err != nil {
		return err
	}
	switch strings.ToUpper(protStr) {
	case "C":
	case "S":
		if err := client.SetProt(gridftp.ProtSafe); err != nil {
			return err
		}
	case "P":
		if err := client.SetProt(gridftp.ProtPrivate); err != nil {
			return err
		}
	default:
		return fmt.Errorf("bad -prot %q", protStr)
	}

	dst := dsi.NewBufferFile(nil)
	start := time.Now()
	if _, err := client.Get("/data.bin", dst); err != nil {
		return err
	}
	report("gsiftp://siteA/data.bin -> file:/data.bin", size, time.Since(start))
	hold()
	return nil
}

func runThirdParty(nw *netsim.Network, siteA *simpleSite, size, parallel int, useDCSC bool, o *obs.Obs) error {
	siteB, err := buildSite(nw, "siteB", o, siteA.streams)
	if err != nil {
		return err
	}
	laptop := nw.Host("laptop")
	cA, err := siteA.connect(laptop)
	if err != nil {
		return err
	}
	defer cA.Close()
	cB, err := siteB.connect(laptop)
	if err != nil {
		return err
	}
	defer cB.Close()
	for _, c := range []*gridftp.Client{cA, cB} {
		if err := c.SetParallelism(parallel); err != nil {
			return err
		}
	}
	opts := gridftp.ThirdPartyOptions{}
	if useDCSC {
		opts.DCSC = siteA.user
		opts.DCSCTarget = gridftp.DCSCDest
		fmt.Println("DCSC: passing site A's credential to site B (Fig 5)")
	} else {
		fmt.Println("conventional DCAU: both sites must trust each other's CA (Fig 4)")
	}
	start := time.Now()
	_, err = gridftp.ThirdParty(cA, "/data.bin", cB, "/data.bin", opts)
	if err != nil {
		return fmt.Errorf("third-party transfer: %w (expected across CAs without -dcsc)", err)
	}
	report("gsiftp://siteA/data.bin -> gsiftp://siteB/data.bin (third party)", size, time.Since(start))
	return nil
}

func report(what string, size int, d time.Duration) {
	fmt.Printf("%s\n", what)
	fmt.Printf("  %d bytes in %v = %s\n", size, d.Round(time.Millisecond), fmtRate(float64(size)/d.Seconds()))
}

func fmtRate(r float64) string {
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.2f GB/s", r/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.2f MB/s", r/1e6)
	}
	return fmt.Sprintf("%.0f KB/s", r/1e3)
}

// simpleSite is a minimal one-user GridFTP site for the workbench.
type simpleSite struct {
	name    string
	trust   *gsi.TrustStore
	user    *gsi.Credential
	storage *dsi.MemStorage
	addr    string
	nw      *netsim.Network
	o       *obs.Obs
	streams *streamstats.Registry
}

func buildSite(nw *netsim.Network, name string, o *obs.Obs, streams *streamstats.Registry) (*simpleSite, error) {
	ca, err := gsi.NewCA(gsi.DN("/O=Grid/OU="+name+"/CN=CA"), 24*time.Hour)
	if err != nil {
		return nil, err
	}
	hostCred, err := ca.Issue(gsi.IssueOptions{
		Subject: gsi.DN("/O=Grid/OU=" + name + "/CN=host"), Lifetime: 12 * time.Hour, Host: true,
	})
	if err != nil {
		return nil, err
	}
	userCred, err := ca.Issue(gsi.IssueOptions{
		Subject: gsi.DN("/O=Grid/OU=" + name + "/CN=alice"), Lifetime: 12 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	trust := gsi.NewTrustStore()
	trust.AddCA(ca.Certificate())
	storage := dsi.NewMemStorage()
	storage.AddUser("alice")
	gm := authz.NewGridmap()
	gm.AddEntry(userCred.DN(), "alice")
	srv, err := gridftp.NewServer(nw.Host(name), gridftp.ServerConfig{
		HostCred: hostCred, Trust: trust, Authz: gm, Storage: storage, EndpointName: name,
		Obs: o, Streams: streams,
	})
	if err != nil {
		return nil, err
	}
	addr, err := srv.ListenAndServe(gridftp.DefaultPort)
	if err != nil {
		return nil, err
	}
	return &simpleSite{name: name, trust: trust, user: userCred, storage: storage, addr: addr.String(), nw: nw, o: o, streams: streams}, nil
}

func (s *simpleSite) putFile(path string, content []byte) error {
	f, err := s.storage.Create("alice", path)
	if err != nil {
		return err
	}
	defer f.Close()
	return dsi.WriteAll(f, content)
}

func (s *simpleSite) connect(from *netsim.Host) (*gridftp.Client, error) {
	proxy, err := gsi.NewProxy(s.user, gsi.ProxyOptions{})
	if err != nil {
		return nil, err
	}
	c, err := gridftp.DialWithOptions(from, s.addr, proxy, s.trust, gridftp.DialOptions{Obs: s.o, Streams: s.streams})
	if err != nil {
		return nil, err
	}
	if err := c.Delegate(2 * time.Hour); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// runLite drives GridFTP-Lite (§III.B): SSH-style password logon, control
// channel tunneled, cleartext data channel, no delegation.
func runLite(nw *netsim.Network, size, parallel int, o *obs.Obs) error {
	ca, err := gsi.NewCA("/O=x/CN=CA", 24*time.Hour)
	if err != nil {
		return err
	}
	hostCred, err := ca.Issue(gsi.IssueOptions{Subject: "/O=x/CN=host", Lifetime: 12 * time.Hour, Host: true})
	if err != nil {
		return err
	}
	dir := pam.NewLDAPDirectory("dc=x")
	dir.AddEntry("alice", "pw")
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: "alice"})
	stack := pam.NewStack("sshd", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
	storage := dsi.NewMemStorage()
	storage.AddUser("alice")
	trust := gsi.NewTrustStore()
	trust.AddCA(ca.Certificate())
	gfs, err := gridftp.NewServer(nw.Host("siteA"), gridftp.ServerConfig{
		HostCred: hostCred, Trust: trust, Authz: authz.NewGridmap(), Storage: storage,
		Obs: o,
	})
	if err != nil {
		return err
	}
	liteSrv := &baseline.LiteServer{HostCred: hostCred, Auth: stack, GridFTP: gfs}
	addr, err := liteSrv.ListenAndServe(nw.Host("siteA"), baseline.LitePort)
	if err != nil {
		return err
	}
	defer liteSrv.Close()

	payload := make([]byte, size)
	f, err := storage.Create("alice", "/data.bin")
	if err != nil {
		return err
	}
	dsi.WriteAll(f, payload)
	f.Close()

	fmt.Println("GridFTP-Lite: SSH password logon, tunneled control channel (paper §III.B)")
	c, err := baseline.LiteDial(nw.Host("laptop"), addr.String(), "alice", "pw")
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.SetParallelism(parallel); err != nil {
		return err
	}
	start := time.Now()
	if _, err := c.Get("/data.bin", dsi.NewBufferFile(nil)); err != nil {
		return err
	}
	report("sshftp://siteA/data.bin -> file:/data.bin (lite: DATA CHANNEL UNPROTECTED)", size, time.Since(start))
	if err := c.Delegate(time.Hour); err != nil {
		fmt.Printf("  delegation: %v\n", err)
	}
	return nil
}
