// Command myproxy-logon demonstrates the GCMU client credential flow
// (§IV.E): it starts a MyProxy Online CA tied to a simulated site identity
// store, performs the logon with a site username/password, and prints the
// issued short-lived certificate — showing the username embedded in the
// DN (no external CA, no gridmap).
//
// Usage:
//
//	myproxy-logon [-user alice] [-password secret] [-lifetime 12h]
//	              [-wrong-password]  # demonstrate the failure path
//	              [-admin 127.0.0.1:9972]
//
// With -admin, the HTTP admin plane (Prometheus /metrics, auth events at
// /debug/events, ...) is served on the given address and the process
// holds until SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gridftp.dev/instant/internal/admin"
	"gridftp.dev/instant/internal/ca"
	"gridftp.dev/instant/internal/gsi"
	"gridftp.dev/instant/internal/myproxy"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/pam"
)

func main() {
	user := flag.String("user", "alice", "site username")
	password := flag.String("password", "secret", "site password")
	lifetime := flag.Duration("lifetime", 12*time.Hour, "requested credential lifetime")
	wrong := flag.Bool("wrong-password", false, "attempt logon with a wrong password")
	adminAddr := flag.String("admin", "", "serve the HTTP admin plane on this address and hold until interrupted")
	flag.Parse()

	if err := run(*user, *password, *lifetime, *wrong, *adminAddr); err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
}

func run(user, password string, lifetime time.Duration, wrong bool, adminAddr string) error {
	nw := netsim.NewNetwork()
	o := obs.FromEnv()

	var adm *admin.Server
	if adminAddr != "" {
		adm = admin.New(o)
		stopTelemetry := adm.EnableTelemetry(o, nil)
		defer stopTelemetry()
		addr, err := adm.ListenAndServe(adminAddr)
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Printf("admin plane: http://%s/\n", addr)
	}

	// Site side: online CA over an LDAP-backed PAM stack.
	signing, err := gsi.NewCA("/O=GCMU/OU=siteA/CN=siteA MyProxy CA", 10*365*24*time.Hour)
	if err != nil {
		return err
	}
	dir := pam.NewLDAPDirectory("dc=siteA")
	dir.AddEntry(user, password)
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: user})
	stack := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})
	online := ca.New(signing, stack, "/O=GCMU/OU=siteA")
	hostCred, err := signing.Issue(gsi.IssueOptions{
		Subject: "/O=GCMU/OU=siteA/CN=host myproxy.siteA", Lifetime: 365 * 24 * time.Hour, Host: true,
	})
	if err != nil {
		return err
	}
	srv := &myproxy.Server{OnlineCA: online, HostCred: hostCred, Obs: o}
	addr, err := srv.ListenAndServe(nw.Host("siteA"), myproxy.DefaultPort)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("myproxy server: %s (CA: %s)\n\n", addr, signing.DN())

	attempt := password
	if wrong {
		attempt = password + "-oops"
	}
	fmt.Printf("$ myproxy-logon -b -T -s %s -l %s\n", addr, user)
	fmt.Printf("Enter MyProxy pass phrase: %s\n", maskPassword(attempt))
	cred, err := myproxy.Logon(nw.Host("laptop"), addr.String(), user,
		pam.PasswordConv(attempt), myproxy.LogonOptions{Lifetime: lifetime})
	if err != nil {
		hold(adm)
		return fmt.Errorf("logon failed (as expected with -wrong-password): %w", err)
	}

	fmt.Printf("\nA credential was issued:\n")
	fmt.Printf("  subject:   %s\n", cred.DN())
	fmt.Printf("  username:  %s (embedded as the final CN, §IV.A)\n", cred.DN().LastCN())
	fmt.Printf("  issuer:    %s\n", gsi.IssuerDN(cred.Cert))
	fmt.Printf("  not after: %s (short-lived)\n", cred.Cert.NotAfter.Format(time.RFC3339))
	fmt.Printf("  key:       generated locally, never left this host\n\n")

	pemData, err := cred.EncodePEM()
	if err != nil {
		return err
	}
	fmt.Printf("credential bundle (%d bytes PEM):\n", len(pemData))
	preview := pemData
	if len(preview) > 300 {
		preview = preview[:300]
	}
	fmt.Printf("%s...\n", preview)
	hold(adm)
	return nil
}

// hold blocks until interrupt when the admin plane is up, so its
// endpoints stay scrapeable after the demo completes.
func hold(adm *admin.Server) {
	if adm == nil {
		return
	}
	fmt.Printf("\nholding for scrapes (curl http://%s/metrics); Ctrl-C to exit\n", adm.Addr())
	admin.AwaitInterrupt()
}

func maskPassword(p string) string {
	out := make([]byte, len(p))
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
