// Command gridftp-server starts a GCMU-packaged GridFTP endpoint inside
// the simulated network substrate, prints its configuration (addresses,
// CA DN, accounts), and optionally runs a self-test transfer against it.
//
// The network substrate is the in-process simulator (internal/netsim); the
// binary demonstrates and exercises the full server stack — TLS control
// channel, MyProxy Online CA, AUTHZ callout, MODE E data channels — as a
// downstream user would wire it into their own harness.
//
// Usage:
//
//	gridftp-server [-name siteA] [-user alice] [-password secret]
//	               [-stripes N] [-selftest] [-oauth] [-verbose] [-metrics]
//	               [-admin 127.0.0.1:9970] [-collector http://host/v1/spans]
//	               [-fleet-push http://head/v1/metrics] [-fleet-instance name]
//	               [-profile-interval 10s] [-profile-retain 5m]
//
// With -admin, an HTTP admin plane (Prometheus /metrics, /healthz,
// /readyz, /debug/spans, /debug/events, /debug/pprof/, and the
// continuous profiler's /debug/profile/continuous window history) is
// served on the given address and the process holds until
// SIGINT/SIGTERM so the endpoints stay scrapeable.
//
// With -fleet-push, the server periodically pushes its metrics snapshot
// (exemplars included) to a fleet federation head — a transfer-service
// run with -fleet — which merges every instance's series into fleet-wide
// aggregates.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gridftp.dev/instant/internal/admin"
	"gridftp.dev/instant/internal/dsi"
	"gridftp.dev/instant/internal/gcmu"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/collector"
	"gridftp.dev/instant/internal/obs/fleet"
	"gridftp.dev/instant/internal/obs/profile"
	"gridftp.dev/instant/internal/obs/tenant"
	"gridftp.dev/instant/internal/pam"
)

func main() {
	name := flag.String("name", "siteA", "endpoint name")
	user := flag.String("user", "alice", "local account to provision")
	password := flag.String("password", "secret", "site password for the account")
	selftest := flag.Bool("selftest", true, "run a loopback transfer after startup")
	withOAuth := flag.Bool("oauth", false, "also start the OAuth server")
	verbose := flag.Bool("verbose", false, "structured debug logging to stderr")
	metrics := flag.Bool("metrics", false, "dump the metrics/span snapshot on exit")
	adminAddr := flag.String("admin", "", "serve the HTTP admin plane on this address and hold until interrupted")
	collectorURL := flag.String("collector", "", "push completed spans to this collector /v1/spans URL on exit")
	fleetPush := flag.String("fleet-push", "", "push this server's metrics to a fleet head's /v1/metrics URL")
	fleetInstance := flag.String("fleet-instance", "", "instance name for -fleet-push (default: -name)")
	fleetPushInterval := flag.Duration("fleet-push-interval", time.Second, "push cadence for -fleet-push")
	profileInterval := flag.Duration("profile-interval", 10*time.Second, "continuous profiler capture cadence (0 disables); runs when -admin or -fleet-push is set")
	profileRetain := flag.Duration("profile-retain", 5*time.Minute, "how long raw continuous-profile captures are retained (summaries persist ~2h)")
	flag.Parse()

	o := obs.FromEnv()
	if *verbose {
		o = obs.New(os.Stderr, obs.LevelDebug)
	}
	// Continuous profiler: always-on capture into the bounded window ring
	// whenever anything can read it — the admin plane's
	// /debug/profile/continuous or a fleet head via the pusher.
	var prof *profile.Profiler
	if *profileInterval > 0 && (*adminAddr != "" || *fleetPush != "") {
		prof = profile.New(profile.Options{
			Interval: *profileInterval,
			Recent:   int(*profileRetain / *profileInterval),
			Obs:      o,
		})
		o.Profile = prof
		prof.Start()
		defer prof.Stop()
	}
	// Tenant accounting plane: per-DN attribution of commands and data
	// bytes, surfaced on the admin plane's /tenants and federated to any
	// fleet head. Only minted when something can read it.
	var tenants *tenant.Accountant
	if *adminAddr != "" || *fleetPush != "" {
		tenants = tenant.New(tenant.Options{Obs: o})
		stopTenants := tenants.Start()
		defer stopTenants()
	}
	if *fleetPush != "" {
		instance := *fleetInstance
		if instance == "" {
			instance = *name
		}
		stopPush := fleet.StartPusher(*fleetPush, instance, o, tenants, *fleetPushInterval)
		defer stopPush()
	}
	err := run(*name, *user, *password, *selftest, *withOAuth, *adminAddr, o, prof, tenants)
	if *metrics {
		fmt.Fprint(os.Stderr, o.DebugSnapshot())
	}
	if *collectorURL != "" {
		// Best-effort: a dead collector must not fail the server run.
		if perr := collector.Push(*collectorURL, *name, o.Tracer().Spans()); perr != nil {
			fmt.Fprintf(os.Stderr, "span export: %v\n", perr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
}

func run(name, user, password string, selftest, withOAuth bool, adminAddr string, o *obs.Obs, prof *profile.Profiler, tenants *tenant.Accountant) error {
	nw := netsim.NewNetwork()

	// The admin plane comes up before the install so /healthz answers
	// immediately; /readyz flips once the endpoint is serving.
	installed := make(chan struct{})
	var adm *admin.Server
	if adminAddr != "" {
		adm = admin.New(o)
		adm.AddReadiness("endpoint", func() error {
			select {
			case <-installed:
				return nil
			default:
				return fmt.Errorf("endpoint not yet installed")
			}
		})
		// Full telemetry: time-series flight recorder, SLO alert engine,
		// and the /debug/stream live feed.
		stopTelemetry := adm.EnableTelemetry(o, nil)
		defer stopTelemetry()
		if prof != nil {
			adm.SetProfiler(prof)
		}
		if tenants != nil {
			adm.SetTenants(tenants)
		}
		addr, err := adm.ListenAndServe(adminAddr)
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Printf("admin plane:     http://%s/\n", addr)
	}

	dir := pam.NewLDAPDirectory("dc=" + name)
	dir.AddEntry(user, password)
	accounts := pam.NewAccountDB()
	accounts.Add(pam.Account{Name: user})
	stack := pam.NewStack("myproxy", accounts,
		pam.Entry{Control: pam.Required, Module: &pam.LDAPModule{Dir: dir}})

	fmt.Printf("installing GCMU endpoint %q (the paper's four-command install, §IV.D)...\n", name)
	start := time.Now()
	ep, err := gcmu.Install(gcmu.Options{
		Name:      name,
		Host:      nw.Host(name),
		Auth:      stack,
		Accounts:  accounts,
		WithOAuth: withOAuth,
		Obs:       o,
		Tenants:   tenants,
	})
	if err != nil {
		return err
	}
	defer ep.Close()
	close(installed)
	fmt.Printf("install complete in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("endpoint:        %s\n", ep.Name)
	fmt.Printf("gridftp:         gsiftp://%s\n", ep.GridFTPAddr)
	fmt.Printf("myproxy:         myproxy://%s\n", ep.MyProxyAddr)
	if ep.OAuthAddr != "" {
		fmt.Printf("oauth:           https://%s\n", ep.OAuthAddr)
	}
	fmt.Printf("site CA:         %s\n", ep.SigningCA.DN())
	fmt.Printf("accounts:        %v\n", accounts.Names())
	fmt.Printf("gridmap file:    none (AUTHZ callout parses username from DN, §IV.C)\n\n")

	if selftest {
		fmt.Println("self-test: myproxy-logon + put + get ...")
		client, err := ep.Connect(nw.Host("laptop"), user, pam.PasswordConv(password))
		if err != nil {
			return fmt.Errorf("self-test connect: %w", err)
		}
		defer client.Close()
		payload := make([]byte, 1<<20)
		for i := range payload {
			payload[i] = byte(i)
		}
		t0 := time.Now()
		if _, err := client.Put("/selftest.bin", dsi.NewBufferFile(payload)); err != nil {
			return fmt.Errorf("self-test put: %w", err)
		}
		dst := dsi.NewBufferFile(nil)
		if _, err := client.Get("/selftest.bin", dst); err != nil {
			return fmt.Errorf("self-test get: %w", err)
		}
		if len(dst.Bytes()) != len(payload) {
			return fmt.Errorf("self-test: round trip %d of %d bytes", len(dst.Bytes()), len(payload))
		}
		fmt.Printf("self-test OK: 1 MiB round trip in %v\n", time.Since(t0).Round(time.Millisecond))
	}
	if adm != nil {
		fmt.Printf("\nholding for scrapes (curl http://%s/metrics); Ctrl-C to exit\n", adm.Addr())
		admin.AwaitInterrupt()
	}
	return nil
}
