package main

// The -stream-health renderer: the per-stream wire-telemetry table from
// a live admin plane's /debug/streams endpoint, or — with the literal
// argument "e18" — from an in-process run of the E18 instrumented
// workload. CI attaches the e18 form to failed bench runs so the data
// path's stream behavior in that exact build is on record next to the
// numbers that regressed.

import (
	"fmt"
	"strings"
	"time"

	"gridftp.dev/instant/internal/experiments"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/streamstats"
)

func runStreamHealth(arg string) error {
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		txt, err := fetchText(strings.TrimRight(arg, "/") + "/debug/streams?format=text")
		if err != nil {
			return err
		}
		fmt.Print(txt)
		return nil
	}
	if arg != "e18" {
		return fmt.Errorf("stream-health: want an admin-plane base URL or \"e18\", got %q", arg)
	}
	reg := streamstats.New(streamstats.Options{
		Obs:      obs.Nop(),
		Interval: 20 * time.Millisecond,
	})
	defer reg.Close()
	// Zero-bandwidth link: run the workload CPU-bound so the table shows
	// what the data path does at full tilt on this machine.
	rate, err := experiments.MeasureStreamTelemetryRate(netsim.LinkParams{}, 8<<20, 4, reg)
	if err != nil {
		return err
	}
	fmt.Printf("E18 instrumented workload: %.1f MB/s\n\n", rate/1e6)
	fmt.Print(streamstats.FormatTable(reg.Health()))
	return nil
}
