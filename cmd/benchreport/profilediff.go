package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"gridftp.dev/instant/internal/experiments"
	"gridftp.dev/instant/internal/netsim"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/profile"
)

// This file is the -profile-diff mode: regression attribution from the
// continuous-profiling plane, offline. Two shapes:
//
//	benchreport -profile-diff e2
//	    run the E2 parallel-stream workload under a live profiler —
//	    one window at p=1, one at p=16 — and diff the windowed
//	    allocation tables: the output names the functions that own the
//	    parallel-stream path's extra allocations (ROADMAP item 2's
//	    ~60k allocs/op, attributed).
//
//	benchreport -profile-diff base.pprof,cur.pprof
//	    diff two saved pprof captures (e.g. downloads from
//	    /debug/profile/continuous/raw) by their first common sample
//	    type.
//
// For a live process, the same diff is one HTTP call:
// /debug/profile/continuous/diff?base=N&cur=M&kind=heap on the admin
// plane.

// profileDiffLink mirrors bench_test.go's reference WAN so the e2 mode
// profiles the same path the benchmarks measure.
var profileDiffLink = netsim.LinkParams{
	Bandwidth:    40e6,
	RTT:          20 * time.Millisecond,
	StreamWindow: 64 * 1024,
}

func runProfileDiff(arg string) error {
	if strings.Contains(arg, ",") {
		parts := strings.SplitN(arg, ",", 2)
		return diffProfileFiles(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
	}
	if strings.EqualFold(arg, "e2") {
		return diffE2()
	}
	return fmt.Errorf("-profile-diff wants \"e2\" or \"base.pprof,cur.pprof\" (got %q)", arg)
}

// diffE2 profiles the E2 parallel-stream workload: window A runs the
// single-stream transfer loop, window B the 16-stream loop, and the
// windowed allocation diff names what the extra streams allocate.
func diffE2() error {
	const fileBytes = 1 << 20
	o := obs.Nop()
	p := profile.New(profile.Options{
		Interval:    time.Second, // windows are closed manually via CaptureOnce
		CPUDuration: 50 * time.Millisecond,
		TopN:        15,
		Obs:         o,
	})
	run := func(parallelism, repeats int) error {
		for i := 0; i < repeats; i++ {
			if _, err := experiments.MeasureWanRate(profileDiffLink, fileBytes, parallelism, false); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Println("profile-diff e2: continuous-profile windows over the E2 parallel-stream workload")
	fmt.Printf("  link: %.0f MB/s, %v RTT, %d KiB stream window; file: %d MiB\n\n",
		profileDiffLink.Bandwidth/1e6, profileDiffLink.RTT, profileDiffLink.StreamWindow/1024, fileBytes>>20)

	if _, err := p.CaptureOnce(); err != nil { // baseline for the cumulative profiles
		return err
	}
	if err := run(1, 4); err != nil {
		return err
	}
	if _, err := p.CaptureOnce(); err != nil {
		return err
	}
	baseID, _ := p.LatestID()
	if err := run(16, 4); err != nil {
		return err
	}
	if _, err := p.CaptureOnce(); err != nil {
		return err
	}
	curID, _ := p.LatestID()

	diff, ok := p.DiffWindows(baseID, curID, profile.KindHeap)
	if !ok {
		return fmt.Errorf("profile windows evicted mid-run")
	}
	fmt.Printf("windowed alloc diff: window %d (4× p=16) − window %d (4× p=1), bytes\n", curID, baseID)
	printFrames(profile.TopN(diff, 15), true)

	fmt.Printf("\np=16 window's top allocation sites (flat bytes):\n")
	printFrames(p.Top(profile.KindHeap, 15), false)
	return nil
}

// diffProfileFiles diffs two saved pprof captures on their first shared
// sample type (preferring alloc_space, then cpu).
func diffProfileFiles(basePath, curPath string) error {
	base, err := loadProfile(basePath)
	if err != nil {
		return err
	}
	cur, err := loadProfile(curPath)
	if err != nil {
		return err
	}
	kind := ""
	for _, want := range []string{"alloc_space", "cpu", "delay", "inuse_space"} {
		if base.ValueIndex(want) >= 0 && cur.ValueIndex(want) >= 0 {
			kind = want
			break
		}
	}
	if kind == "" && len(base.SampleTypes) > 0 {
		kind = base.SampleTypes[0].Type
	}
	bIdx, cIdx := base.ValueIndex(kind), cur.ValueIndex(kind)
	if bIdx < 0 || cIdx < 0 {
		return fmt.Errorf("no shared sample type between %s and %s", basePath, curPath)
	}
	diff := profile.DiffTables(profile.FrameTable(cur, cIdx), profile.FrameTable(base, bIdx), false)
	fmt.Printf("profile diff (%s): %s − %s\n", kind, curPath, basePath)
	printFrames(profile.TopN(diff, 20), true)
	return nil
}

func loadProfile(path string) (*profile.Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := profile.ParsePprof(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// printFrames renders one table. withDelta adds the delta column.
func printFrames(frames []obs.ProfileFrame, withDelta bool) {
	if len(frames) == 0 {
		fmt.Println("  (no frames)")
		return
	}
	if withDelta {
		fmt.Printf("  %14s %14s %14s  %s\n", "delta", "flat", "cum", "function")
		for _, f := range frames {
			fmt.Printf("  %+14d %14d %14d  %s\n", f.Delta, f.Flat, f.Cum, trimFunc(f.Func))
		}
		return
	}
	fmt.Printf("  %14s %14s  %s\n", "flat", "cum", "function")
	for _, f := range frames {
		fmt.Printf("  %14d %14d  %s\n", f.Flat, f.Cum, trimFunc(f.Func))
	}
}

// trimFunc drops the module prefix so tables fit a terminal.
func trimFunc(fn string) string {
	return strings.TrimPrefix(fn, "gridftp.dev/instant/")
}
