package main

// The -dashboard renderer: a one-shot terminal view of a live admin
// plane's time-series recorder — a sparkline per series, the active
// alerts, and the busiest transfer tasks by current throughput. Point it
// at any daemon started with -admin:
//
//	benchreport -dashboard http://127.0.0.1:9970
//
// or at a saved /debug/timeseries JSON document.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// sparkRunes are the eight-level bar glyphs, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkWidth is how many cells a sparkline gets; longer histories are
// tail-truncated (the dashboard is about "now", the endpoint has the
// full history).
const sparkWidth = 40

type tsPoint struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

type tsSeries struct {
	Name   string    `json:"name"`
	Points []tsPoint `json:"points"`
}

type tsDocument struct {
	Now    time.Time  `json:"now"`
	Series []tsSeries `json:"series"`
}

type alertDocument struct {
	Active int `json:"active"`
	Alerts []struct {
		Rule struct {
			Name     string  `json:"name"`
			Series   string  `json:"series"`
			Value    float64 `json:"value"`
			Severity string  `json:"severity"`
		} `json:"rule"`
		State string    `json:"state"`
		Value float64   `json:"value"`
		Since time.Time `json:"since"`
	} `json:"alerts"`
}

// tenantStat mirrors the wire shape of internal/obs/tenant.Stat as
// served by /tenants and /fleet/tenants — only the fields the table
// renders.
type tenantStat struct {
	Rank      int     `json:"rank"`
	DN        string  `json:"dn"`
	Hash      string  `json:"hash"`
	Bytes     int64   `json:"bytes"`
	Active    int64   `json:"active"`
	ErrorRate float64 `json:"error_rate"`
	Share     float64 `json:"share"`
}

type tenantDocument struct {
	Tenants []tenantStat `json:"tenants"`
	Summary struct {
		Tracked    int   `json:"tracked"`
		Capacity   int   `json:"capacity"`
		Admissions int64 `json:"admissions"`
		Evictions  int64 `json:"evictions"`
		MaxError   int64 `json:"max_error"`
	} `json:"summary"`
}

// renderDashboard loads the recorder state from src — an admin-plane base
// URL (or a full /debug/timeseries URL) or a JSON file — and prints the
// dashboard. Alerts are fetched from the same base when src is a URL.
func renderDashboard(src string) error {
	var doc tsDocument
	var alerts *alertDocument
	var tenants *tenantDocument
	var streamTable string

	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		base := strings.TrimSuffix(src, "/")
		tsURL := base
		if !strings.Contains(base, "/debug/timeseries") {
			tsURL = base + "/debug/timeseries"
		}
		if err := fetchJSON(tsURL, &doc); err != nil {
			return err
		}
		if i := strings.Index(base, "/debug/timeseries"); i >= 0 {
			base = base[:i]
		}
		var a alertDocument
		if err := fetchJSON(base+"/alerts", &a); err == nil {
			alerts = &a
		}
		// An unreachable /alerts (older daemon, 503) just hides the table.
		// Same contract for the stream-health table: daemons without the
		// stream-telemetry plane answer 503 and the section is omitted.
		if txt, err := fetchText(base + "/debug/streams?format=text"); err == nil {
			streamTable = txt
		}
		// Same again for tenant accounting: daemons without the plane 503.
		var td tenantDocument
		if err := fetchJSON(base+"/tenants", &td); err == nil {
			tenants = &td
		}
	} else {
		raw, err := os.ReadFile(src)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", src, err)
		}
	}

	fmt.Printf("telemetry dashboard — %s", src)
	if !doc.Now.IsZero() {
		fmt.Printf(" @ %s", doc.Now.Local().Format("15:04:05"))
	}
	fmt.Printf("\n%s\n\n", strings.Repeat("=", 72))

	if alerts != nil {
		renderAlertTable(*alerts)
	}
	if streamTable != "" {
		fmt.Println("stream health (per-stream wire telemetry)")
		for _, line := range strings.Split(strings.TrimRight(streamTable, "\n"), "\n") {
			fmt.Println("  " + line)
		}
		fmt.Println()
	}
	if tenants != nil {
		renderTopTenants(*tenants, doc.Series)
	}
	renderTopTasks(doc.Series)
	renderSparklines(doc.Series)
	return nil
}

// renderTopTenants prints the per-DN attribution table. Cumulative
// columns (share, error rate) come from the /tenants sketch snapshot;
// the instantaneous bytes/s column is joined from the recorder's
// tenant.<hash>.bytes_per_sec series when present.
func renderTopTenants(td tenantDocument, series []tsSeries) {
	if len(td.Tenants) == 0 {
		return
	}
	rates := make(map[string]float64)
	for _, s := range series {
		rest, ok := strings.CutPrefix(s.Name, "tenant.")
		if !ok || !strings.HasSuffix(rest, ".bytes_per_sec") || len(s.Points) == 0 {
			continue
		}
		rates[strings.TrimSuffix(rest, ".bytes_per_sec")] = s.Points[len(s.Points)-1].V
	}
	fmt.Printf("top tenants by bytes moved (tracking %d/%d DNs, max overestimate %s)\n",
		td.Summary.Tracked, td.Summary.Capacity, fmtBytes(float64(td.Summary.MaxError)))
	fmt.Printf("  %4s %-40s %12s %8s %7s %7s\n", "rank", "dn", "bytes/s", "moved", "err%", "share")
	for _, t := range td.Tenants {
		dn := t.DN
		if len(dn) > 40 {
			dn = "…" + dn[len(dn)-39:]
		}
		rate := "-"
		if v, ok := rates[t.Hash]; ok {
			rate = fmtBytes(v) + "/s"
		}
		fmt.Printf("  %4d %-40s %12s %8s %6.1f%% %6.1f%%\n",
			t.Rank, dn, rate, fmtBytes(float64(t.Bytes)), t.ErrorRate*100, t.Share*100)
	}
	fmt.Println()
}

func fetchJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}

func fetchText(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func renderAlertTable(a alertDocument) {
	fmt.Printf("alerts (%d active)\n", a.Active)
	if len(a.Alerts) == 0 {
		fmt.Println("  (no rules installed)")
		fmt.Println()
		return
	}
	fmt.Printf("  %-8s %-34s %-10s %12s %12s\n", "state", "rule", "severity", "value", "threshold")
	for _, al := range a.Alerts {
		marker := " "
		if al.State == "firing" {
			marker = "!"
		}
		fmt.Printf("%s %-8s %-34s %-10s %12.4g %12.4g\n",
			marker, al.State, al.Rule.Name, al.Rule.Severity, al.Value, al.Rule.Value)
	}
	fmt.Println()
}

// renderTopTasks lists tasks by their latest throughput sample, busiest
// first — the "what is moving right now" view.
func renderTopTasks(series []tsSeries) {
	type taskRate struct {
		task string
		rate float64
	}
	var tasks []taskRate
	for _, s := range series {
		name, ok := strings.CutPrefix(s.Name, "transfer.task.")
		if !ok || !strings.HasSuffix(name, ".throughput") || strings.Contains(name, ".worker.") {
			continue
		}
		if len(s.Points) == 0 {
			continue
		}
		tasks = append(tasks, taskRate{
			task: strings.TrimSuffix(name, ".throughput"),
			rate: s.Points[len(s.Points)-1].V,
		})
	}
	if len(tasks) == 0 {
		return
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].rate > tasks[j].rate })
	const topN = 10
	fmt.Println("top tasks by current throughput")
	for i, tr := range tasks {
		if i == topN {
			fmt.Printf("  ... and %d more\n", len(tasks)-topN)
			break
		}
		fmt.Printf("  %2d. %-28s %12s/s\n", i+1, tr.task, fmtBytes(tr.rate))
	}
	fmt.Println()
}

func renderSparklines(series []tsSeries) {
	if len(series) == 0 {
		fmt.Println("(no series recorded)")
		return
	}
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	if nameW > 52 {
		nameW = 52
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		pts := s.Points
		if len(pts) > sparkWidth {
			pts = pts[len(pts)-sparkWidth:]
		}
		name := s.Name
		if len(name) > nameW {
			name = "…" + name[len(name)-nameW+1:]
		}
		last := pts[len(pts)-1].V
		fmt.Printf("  %-*s %-*s %12s\n", nameW, name, sparkWidth, sparkline(pts), fmtValue(last))
	}
}

// sparkline maps the points' values onto the eight bar glyphs, scaled to
// the window's own min/max (a flat series renders as a low bar).
func sparkline(pts []tsPoint) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		lo = math.Min(lo, p.V)
		hi = math.Max(hi, p.V)
	}
	var b strings.Builder
	for _, p := range pts {
		idx := 0
		if hi > lo {
			idx = int((p.V - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

func fmtValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3g", v)
	}
	return fmt.Sprintf("%.3f", v)
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f GB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2f MB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f KB", v/1e3)
	}
	return fmt.Sprintf("%.0f B", v)
}
