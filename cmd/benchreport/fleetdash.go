package main

// The -fleet-dashboard renderer: a one-shot terminal view of a fleet
// federation head — the instance registry with per-instance goodput and
// outlier highlighting, the fleet alert table, and sparklines over the
// fleet.* aggregate series. Point it at any admin plane whose process
// runs with -fleet:
//
//	benchreport -fleet-dashboard http://127.0.0.1:9971

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

type fleetInstance struct {
	Name       string    `json:"name"`
	Addr       string    `json:"addr"`
	Up         bool      `json:"up"`
	Stale      bool      `json:"stale"`
	LastSeen   time.Time `json:"last_seen"`
	Restarts   int       `json:"restarts"`
	Pushes     int64     `json:"pushes"`
	GoodputBps float64   `json:"goodput_bps"`
}

type fleetTSDocument struct {
	Series []tsSeries `json:"series"`
}

type fleetBundleDocument struct {
	Bundles []struct {
		Name             string    `json:"name"`
		Rule             string    `json:"rule"`
		CapturedAt       time.Time `json:"captured_at"`
		ExemplarTraceIDs []string  `json:"exemplar_trace_ids"`
		Files            []string  `json:"files"`
	} `json:"bundles"`
	Skipped int `json:"skipped"`
}

// renderFleetDashboard fetches the federation head's registry, alerts,
// timeseries, and bundle manifests from the admin-plane base URL and
// prints them as one terminal page.
func renderFleetDashboard(src string) error {
	base := strings.TrimSuffix(src, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return fmt.Errorf("-fleet-dashboard wants an admin-plane base URL, got %q", src)
	}

	var instances []fleetInstance
	if err := fetchJSON(base+"/fleet/instances", &instances); err != nil {
		return fmt.Errorf("fleet head not reachable (is the daemon running with -fleet?): %w", err)
	}

	fmt.Printf("fleet dashboard — %s @ %s\n%s\n\n",
		src, time.Now().Local().Format("15:04:05"), strings.Repeat("=", 72))

	renderFleetInstances(instances)

	var alerts alertDocument
	if err := fetchJSON(base+"/fleet/alerts", &alerts); err == nil {
		renderAlertTable(alerts)
	}

	var bundles fleetBundleDocument
	if err := fetchJSON(base+"/fleet/bundles", &bundles); err == nil && len(bundles.Bundles) > 0 {
		renderFleetBundles(bundles)
	}

	// Fleet-merged tenant attribution: per-DN sums across every
	// instance's pushed sketch table. Heads without tenant pushes just
	// return an empty table and the section is omitted.
	var tenants tenantDocument
	if err := fetchJSON(base+"/fleet/tenants", &tenants); err == nil && len(tenants.Tenants) > 0 {
		renderFleetTenants(tenants)
	}

	var ts fleetTSDocument
	if err := fetchJSON(base+"/fleet/timeseries?series=fleet.", &ts); err != nil {
		return err
	}
	renderSparklines(ts.Series)
	return nil
}

// renderFleetInstances prints the registry, goodput outliers marked:
// an up instance running under half the fleet median goodput is the
// straggler the fleet.goodput.outlier_ratio series is tracking.
func renderFleetInstances(instances []fleetInstance) {
	fmt.Printf("instances (%d)\n", len(instances))
	if len(instances) == 0 {
		fmt.Println("  (none registered — nothing pushed or scraped yet)")
		fmt.Println()
		return
	}
	median := medianGoodput(instances)
	sort.Slice(instances, func(i, j int) bool { return instances[i].Name < instances[j].Name })
	fmt.Printf("  %-20s %-6s %9s %9s %12s  %s\n", "instance", "state", "pushes", "restarts", "goodput", "last seen")
	for _, in := range instances {
		state, marker := "up", " "
		switch {
		case in.Stale:
			state, marker = "stale", "!"
		case median > 0 && in.GoodputBps < median/2:
			marker = "*" // goodput outlier: under half the fleet median
		}
		fmt.Printf("%s %-20s %-6s %9d %9d %10s/s  %s\n",
			marker, in.Name, state, in.Pushes, in.Restarts,
			fmtBytes(in.GoodputBps), in.LastSeen.Local().Format("15:04:05"))
	}
	fmt.Println()
}

func medianGoodput(instances []fleetInstance) float64 {
	var rates []float64
	for _, in := range instances {
		if !in.Stale {
			rates = append(rates, in.GoodputBps)
		}
	}
	if len(rates) < 3 {
		return 0 // too few live instances for an outlier baseline
	}
	sort.Float64s(rates)
	return rates[len(rates)/2]
}

// renderFleetTenants prints the fleet-merged per-DN table. Unlike the
// single-daemon dashboard there is no instantaneous bytes/s join (the
// head merges cumulative tables, not rate series), so the columns are
// the restart-proof totals plus the live active-transfer gauge.
func renderFleetTenants(td tenantDocument) {
	fmt.Printf("fleet tenants by bytes moved (%d shown)\n", len(td.Tenants))
	fmt.Printf("  %4s %-40s %10s %7s %7s %7s\n", "rank", "dn", "moved", "active", "err%", "share")
	for _, t := range td.Tenants {
		dn := t.DN
		if len(dn) > 40 {
			dn = "…" + dn[len(dn)-39:]
		}
		fmt.Printf("  %4d %-40s %10s %7d %6.1f%% %6.1f%%\n",
			t.Rank, dn, fmtBytes(float64(t.Bytes)), t.Active, t.ErrorRate*100, t.Share*100)
	}
	fmt.Println()
}

func renderFleetBundles(doc fleetBundleDocument) {
	fmt.Printf("diagnostic bundles (%d on disk, %d captures skipped)\n",
		len(doc.Bundles), doc.Skipped)
	for _, b := range doc.Bundles {
		traces := ""
		if len(b.ExemplarTraceIDs) > 0 {
			traces = fmt.Sprintf("  exemplar trace %s", b.ExemplarTraceIDs[0])
		}
		fmt.Printf("  %-52s %s  %d files%s\n",
			b.Name, b.CapturedAt.Local().Format("15:04:05"), len(b.Files)+1, traces)
	}
	fmt.Println()
}
