// Command benchreport regenerates every table and figure of the Instant
// GridFTP reproduction (experiments E1-E13 plus ablations; see DESIGN.md
// for the per-experiment index) and prints them as aligned text tables.
//
// Usage:
//
//	benchreport                        # run everything
//	benchreport -exp e2                # run one experiment (e1..e12, blocksize, cache, autotune, transport)
//	benchreport -list                  # list experiment ids
//	benchreport -metrics-snapshot f    # render a metrics snapshot file (obs.WriteMetrics format)
//	benchreport -metrics-snapshot http://127.0.0.1:9970/metrics
//	                                   # scrape a live admin /metrics endpoint
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"gridftp.dev/instant/internal/experiments"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/expfmt"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	snapshot := flag.String("metrics-snapshot", "", "render a metrics snapshot and exit: a file (obs.WriteMetrics format) or an http(s):// URL of a live admin /metrics endpoint")
	flag.Parse()

	if *snapshot != "" {
		if err := renderSnapshot(*snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	byID := experiments.ByID()
	if *list {
		ids := make([]string, 0, len(byID))
		for id := range byID {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	if *exp != "" {
		run, ok := byID[strings.ToLower(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		if err := runOne(run); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("Instant GridFTP reproduction — full experiment report")
	fmt.Println("======================================================")
	start := time.Now()
	failed := 0
	for _, run := range experiments.All() {
		if err := runOne(run); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			failed++
		}
	}
	fmt.Printf("report complete in %v (%d experiments failed)\n",
		time.Since(start).Round(time.Second), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// renderSnapshot loads a metrics snapshot and prints it as an aligned
// table, one row per metric. The source is either a file in the text
// format WriteMetrics emits (what the -metrics flags of
// gridftp-server/transfer-service dump) or, when it starts with
// http:// or https://, a live admin-plane /metrics endpoint in
// Prometheus text exposition format. A full -metrics dump also carries
// the span forest after a "# spans" header; that part is not metric
// lines, so it is split off and echoed verbatim.
func renderSnapshot(src string) error {
	var metrics []obs.Metric
	spans := ""
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("scrape %s: %s", src, resp.Status)
		}
		metrics, err = expfmt.ParseText(resp.Body)
		if err != nil {
			return fmt.Errorf("scrape %s: %w", src, err)
		}
	} else {
		raw, err := os.ReadFile(src)
		if err != nil {
			return err
		}
		text := string(raw)
		if i := strings.Index(text, "# spans\n"); i >= 0 {
			text, spans = text[:i], text[i+len("# spans\n"):]
		}
		metrics, err = obs.ParseSnapshot(strings.NewReader(text))
		if err != nil {
			return err
		}
	}
	fmt.Printf("%-10s %-48s %14s %16s %12s %12s %12s\n",
		"kind", "name", "value", "sum", "p50", "p90", "p99")
	for _, m := range metrics {
		sum, p50, p90, p99 := "", "", "", ""
		if m.Kind == "histogram" {
			sum = fmt.Sprintf("%.6f", m.Sum)
			if m.Value > 0 {
				p50 = fmt.Sprintf("%.6f", m.P50)
				p90 = fmt.Sprintf("%.6f", m.P90)
				p99 = fmt.Sprintf("%.6f", m.P99)
			}
		}
		fmt.Printf("%-10s %-48s %14d %16s %12s %12s %12s\n",
			m.Kind, m.Name, m.Value, sum, p50, p90, p99)
	}
	fmt.Printf("(%d metrics)\n", len(metrics))
	if strings.TrimSpace(spans) != "" {
		fmt.Printf("\nspans:\n%s", spans)
	}
	return nil
}

func runOne(run func() (*experiments.Table, error)) error {
	start := time.Now()
	table, err := run()
	if err != nil {
		return err
	}
	fmt.Println(table.Format())
	fmt.Printf("   (generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}
