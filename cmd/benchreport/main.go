// Command benchreport regenerates every table and figure of the Instant
// GridFTP reproduction (experiments E1-E13 plus ablations; see DESIGN.md
// for the per-experiment index) and prints them as aligned text tables.
//
// Usage:
//
//	benchreport                        # run everything
//	benchreport -exp e2                # run one experiment (e1..e12, e14, blocksize, cache, autotune, transport)
//	benchreport -list                  # list experiment ids
//	benchreport -metrics-snapshot f    # render a metrics snapshot file (obs.WriteMetrics format)
//	benchreport -metrics-snapshot http://127.0.0.1:9970/metrics
//	                                   # scrape a live admin /metrics endpoint
//	benchreport -trace-timeline src[,src...]
//	                                   # stitch span exports (files or /debug/spans
//	                                   # URLs) into per-trace Gantt timelines
//	benchreport -trace-timeline a.json,b.json -trace 0123..ef
//	                                   # render one specific trace id
//	benchreport -dashboard http://127.0.0.1:9970
//	                                   # live telemetry dashboard: sparklines
//	                                   # per series, active alerts, top tasks
//	benchreport -fleet-dashboard http://127.0.0.1:9971
//	                                   # fleet federation dashboard: instance
//	                                   # registry, fleet alerts, diagnostic
//	                                   # bundles, fleet.* sparklines
//	benchreport -profile-diff e2       # profile the E2 parallel-stream path
//	                                   # and name its allocation owners
//	benchreport -profile-diff a.pprof,b.pprof
//	                                   # diff two saved pprof captures (for
//	                                   # live processes, see the admin
//	                                   # plane's /debug/profile/continuous)
//	benchreport -stream-health http://127.0.0.1:9970
//	                                   # per-stream wire-telemetry health
//	                                   # table from a live /debug/streams
//	benchreport -stream-health e18     # same table from an in-process run
//	                                   # of the instrumented E18 workload
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"gridftp.dev/instant/internal/experiments"
	"gridftp.dev/instant/internal/obs"
	"gridftp.dev/instant/internal/obs/collector"
	"gridftp.dev/instant/internal/obs/expfmt"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	snapshot := flag.String("metrics-snapshot", "", "render a metrics snapshot and exit: a file (obs.WriteMetrics format) or an http(s):// URL of a live admin /metrics endpoint")
	timeline := flag.String("trace-timeline", "", "comma-separated span-export sources (JSON files or http(s):// /debug/spans URLs); stitch them and render per-trace timelines")
	traceID := flag.String("trace", "", "with -trace-timeline: render only this trace id")
	dashboard := flag.String("dashboard", "", "render a terminal telemetry dashboard from an admin-plane base URL (sparklines, alerts, top tasks) or a saved /debug/timeseries JSON file")
	fleetDashboard := flag.String("fleet-dashboard", "", "render a fleet federation dashboard (instance registry, fleet alerts, bundles, fleet.* sparklines) from a fleet head's admin-plane base URL")
	profileDiff := flag.String("profile-diff", "", "attribute allocation/CPU deltas: \"e2\" profiles the parallel-stream workload live, or \"base.pprof,cur.pprof\" diffs two saved captures (e.g. /debug/profile/continuous/raw downloads); live processes serve the same diff at /debug/profile/continuous/diff")
	streamHealth := flag.String("stream-health", "", "print the per-stream wire-telemetry table: an admin-plane base URL (/debug/streams) or \"e18\" to drive the instrumented workload in-process")
	flag.Parse()

	if *streamHealth != "" {
		if err := runStreamHealth(*streamHealth); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *profileDiff != "" {
		if err := runProfileDiff(*profileDiff); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fleetDashboard != "" {
		if err := renderFleetDashboard(*fleetDashboard); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *dashboard != "" {
		if err := renderDashboard(*dashboard); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *timeline != "" {
		if err := renderTimelines(strings.Split(*timeline, ","), *traceID); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *snapshot != "" {
		if err := renderSnapshot(*snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	byID := experiments.ByID()
	if *list {
		ids := make([]string, 0, len(byID))
		for id := range byID {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	if *exp != "" {
		run, ok := byID[strings.ToLower(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		if err := runOne(run); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("Instant GridFTP reproduction — full experiment report")
	fmt.Println("======================================================")
	start := time.Now()
	failed := 0
	for _, run := range experiments.All() {
		if err := runOne(run); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			failed++
		}
	}
	fmt.Printf("report complete in %v (%d experiments failed)\n",
		time.Since(start).Round(time.Second), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// renderTimelines loads span exports from each source (a JSON file, or an
// http(s):// URL of an admin /debug/spans endpoint), stitches them in a
// collector, and renders a Gantt-style timeline per trace: one row per
// span grouped by process, critical-path spans marked '*', and uncovered
// gaps listed. Sources default their process label to the file name /
// URL host so multi-process traces stay readable even when the export
// carries no process field.
func renderTimelines(sources []string, only string) error {
	c := collector.New()
	for _, src := range sources {
		src = strings.TrimSpace(src)
		if src == "" {
			continue
		}
		var raw []byte
		label := src
		if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
			resp, err := http.Get(src)
			if err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				return fmt.Errorf("scrape %s: %s", src, resp.Status)
			}
			raw, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return err
			}
		} else {
			var err error
			raw, err = os.ReadFile(src)
			if err != nil {
				return err
			}
		}
		spans, err := collector.ParseExport(raw, label)
		if err != nil {
			return fmt.Errorf("%s: %w", src, err)
		}
		c.Add(spans...)
	}

	ids := c.TraceIDs()
	if only != "" {
		ids = []string{only}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no completed spans with trace ids in %s", strings.Join(sources, ","))
	}
	for _, id := range ids {
		tr := c.Stitch(id)
		if tr == nil {
			return fmt.Errorf("unknown trace id %s", id)
		}
		fmt.Println(tr.Timeline())
	}
	return nil
}

// renderSnapshot loads a metrics snapshot and prints it as an aligned
// table, one row per metric. The source is either a file in the text
// format WriteMetrics emits (what the -metrics flags of
// gridftp-server/transfer-service dump) or, when it starts with
// http:// or https://, a live admin-plane /metrics endpoint in
// Prometheus text exposition format. A full -metrics dump also carries
// the span forest after a "# spans" header; that part is not metric
// lines, so it is split off and echoed verbatim.
func renderSnapshot(src string) error {
	var metrics []obs.Metric
	spans := ""
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("scrape %s: %s", src, resp.Status)
		}
		metrics, err = expfmt.ParseText(resp.Body)
		if err != nil {
			return fmt.Errorf("scrape %s: %w", src, err)
		}
	} else {
		raw, err := os.ReadFile(src)
		if err != nil {
			return err
		}
		text := string(raw)
		if i := strings.Index(text, "# spans\n"); i >= 0 {
			text, spans = text[:i], text[i+len("# spans\n"):]
		}
		metrics, err = obs.ParseSnapshot(strings.NewReader(text))
		if err != nil {
			return err
		}
	}
	fmt.Printf("%-10s %-48s %14s %16s %12s %12s %12s\n",
		"kind", "name", "value", "sum", "p50", "p90", "p99")
	for _, m := range metrics {
		sum, p50, p90, p99 := "", "", "", ""
		if m.Kind == "histogram" {
			sum = fmt.Sprintf("%.6f", m.Sum)
			if m.Value > 0 {
				p50 = fmt.Sprintf("%.6f", m.P50)
				p90 = fmt.Sprintf("%.6f", m.P90)
				p99 = fmt.Sprintf("%.6f", m.P99)
			}
		}
		fmt.Printf("%-10s %-48s %14d %16s %12s %12s %12s\n",
			m.Kind, m.Name, m.Value, sum, p50, p90, p99)
	}
	fmt.Printf("(%d metrics)\n", len(metrics))
	if strings.TrimSpace(spans) != "" {
		fmt.Printf("\nspans:\n%s", spans)
	}
	return nil
}

func runOne(run func() (*experiments.Table, error)) error {
	start := time.Now()
	table, err := run()
	if err != nil {
		return err
	}
	fmt.Println(table.Format())
	fmt.Printf("   (generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}
