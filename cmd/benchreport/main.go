// Command benchreport regenerates every table and figure of the Instant
// GridFTP reproduction (experiments E1-E13 plus ablations; see DESIGN.md
// for the per-experiment index) and prints them as aligned text tables.
//
// Usage:
//
//	benchreport            # run everything
//	benchreport -exp e2    # run one experiment (e1..e12, blocksize, cache, autotune, transport)
//	benchreport -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"gridftp.dev/instant/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	byID := experiments.ByID()
	if *list {
		ids := make([]string, 0, len(byID))
		for id := range byID {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	if *exp != "" {
		run, ok := byID[strings.ToLower(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		if err := runOne(run); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("Instant GridFTP reproduction — full experiment report")
	fmt.Println("======================================================")
	start := time.Now()
	failed := 0
	for _, run := range experiments.All() {
		if err := runOne(run); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			failed++
		}
	}
	fmt.Printf("report complete in %v (%d experiments failed)\n",
		time.Since(start).Round(time.Second), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func runOne(run func() (*experiments.Table, error)) error {
	start := time.Now()
	table, err := run()
	if err != nil {
		return err
	}
	fmt.Println(table.Format())
	fmt.Printf("   (generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}
