#!/bin/sh
# bench.sh — run the root benchmark suite once and record the numbers as
# the repo's benchmark trajectory file.
#
# Usage: ./scripts/bench.sh [output.json]    (default: BENCH_8.json)
#
# Runs `go test -bench . -benchtime=1x -benchmem` at the repo root and
# writes a JSON object mapping each benchmark (including sub-benchmarks)
# to its metrics:
#
#   {
#     "BenchmarkE2ParallelStreams/gridftp-p4-8": {
#       "ns_per_op": 123456789,
#       "mb_per_s": 1.57,
#       "bytes_per_op": 4096,
#       "allocs_per_op": 42
#     },
#     ...
#   }
#
# Benchmark-specific metrics (ms/file, bytes-moved/file-size, ...) appear
# under keys with non-alphanumerics mapped to "_". The format is
# documented in README.md ("Benchmark trajectory").
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_8.json}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT INT TERM

go test -run '^$' -bench . -benchtime=1x -benchmem . | tee "$tmp"

awk '
/^Benchmark/ {
	name = $1
	line = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		if (unit == "ns/op")          key = "ns_per_op"
		else if (unit == "MB/s")      key = "mb_per_s"
		else if (unit == "B/op")      key = "bytes_per_op"
		else if (unit == "allocs/op") key = "allocs_per_op"
		else { key = unit; gsub(/[^A-Za-z0-9]/, "_", key) }
		if (line != "") line = line ", "
		line = line "\"" key "\": " $i
	}
	if (count++ > 0) printf ",\n"
	printf "  \"%s\": {%s}", name, line
}
END { printf "\n" }
' "$tmp" | { echo "{"; cat; echo "}"; } > "$out"

echo "wrote $out"
