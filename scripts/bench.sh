#!/bin/sh
# bench.sh — run the root benchmark suite once and record the numbers as
# the repo's benchmark trajectory file.
#
# Usage: ./scripts/bench.sh [output.json]    (default: BENCH_10.json)
#
# Runs `go test -bench . -benchtime=1x -benchmem` at the repo root and
# writes a JSON object mapping each benchmark (including sub-benchmarks)
# to its metrics:
#
#   {
#     "BenchmarkE2ParallelStreams/gridftp-p4-8": {
#       "ns_per_op": 123456789,
#       "mb_per_s": 1.57,
#       "bytes_per_op": 4096,
#       "allocs_per_op": 42
#     },
#     ...
#   }
#
# Benchmark-specific metrics (ms/file, bytes-moved/file-size, ...) appear
# under keys with non-alphanumerics mapped to "_". The format is
# documented in README.md ("Benchmark trajectory").
#
# Regression gates: the E2 p16 transfer is the allocation-budget canary for
# the MODE E fast path. If its allocs/op exceeds the recorded baseline by
# more than 20%, the run fails — a pooled buffer leaking back to per-block
# allocation shows up here before it shows up as GC pressure in the field.
# The E20 tenant-attribution overhead gate holds the per-DN accounting
# plane to <=1% of achieved throughput on the same E2/p16 path — watching
# who moves the bytes must not slow the bytes.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_10.json}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT INT TERM

# Baseline for the allocs/op gate (E2/gridftp-p16 after the fast-path PR).
ALLOC_GATE_BENCH="BenchmarkE2ParallelStreams/gridftp-p16"
ALLOC_GATE_BASELINE=30000

# Ceiling for the E20 pct-overhead gate (percent of achieved throughput).
TENANT_GATE_BENCH="BenchmarkE20TenantAttributionOverhead"
TENANT_GATE_LIMIT=1.0

go test -run '^$' -bench . -benchtime=1x -benchmem . | tee "$tmp"

awk '
/^Benchmark/ {
	name = $1
	line = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		if (unit == "ns/op")          key = "ns_per_op"
		else if (unit == "MB/s")      key = "mb_per_s"
		else if (unit == "B/op")      key = "bytes_per_op"
		else if (unit == "allocs/op") key = "allocs_per_op"
		else { key = unit; gsub(/[^A-Za-z0-9]/, "_", key) }
		if (line != "") line = line ", "
		line = line "\"" key "\": " $i
	}
	if (count++ > 0) printf ",\n"
	printf "  \"%s\": {%s}", name, line
}
END { printf "\n" }
' "$tmp" | { echo "{"; cat; echo "}"; } > "$out"

echo "wrote $out"

awk -v bench="$ALLOC_GATE_BENCH" -v base="$ALLOC_GATE_BASELINE" '
$1 ~ "^" bench {
	for (i = 3; i + 1 <= NF; i += 2) {
		if ($(i + 1) == "allocs/op") allocs = $i
	}
}
END {
	if (allocs == "") {
		print "alloc gate: " bench " not found in run" > "/dev/stderr"
		exit 1
	}
	limit = base * 1.2
	if (allocs + 0 > limit) {
		printf "alloc gate: %s at %d allocs/op exceeds baseline %d by >20%% (limit %d)\n", \
			bench, allocs, base, limit > "/dev/stderr"
		exit 1
	}
	printf "alloc gate: %s at %d allocs/op within budget (baseline %d, limit %d)\n", \
		bench, allocs, base, limit
}
' "$tmp"

awk -v bench="$TENANT_GATE_BENCH" -v limit="$TENANT_GATE_LIMIT" '
$1 ~ "^" bench {
	for (i = 3; i + 1 <= NF; i += 2) {
		if ($(i + 1) == "pct-overhead") { pct = $i; seen = 1 }
	}
}
END {
	if (!seen) {
		print "tenant gate: " bench " not found in run" > "/dev/stderr"
		exit 1
	}
	if (pct + 0 > limit + 0) {
		printf "tenant gate: %s overhead %.3f%% exceeds %.1f%% budget\n", \
			bench, pct, limit > "/dev/stderr"
		exit 1
	}
	printf "tenant gate: %s overhead %.3f%% within %.1f%% budget\n", bench, pct, limit
}
' "$tmp"
