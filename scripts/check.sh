#!/bin/sh
# check.sh — the pre-commit gate: build, vet, full test suite, and the
# race detector on the concurrency-heavy packages (the observability
# registry/tracer, the GridFTP engine with its marker emitters, the
# hosted transfer service, and the network simulator).
#
# Usage: ./scripts/check.sh [extra go-test args]
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test "$@" ./...

echo "==> go test -race (obs, gridftp, transfer, netsim, usagestats)"
go test -race "$@" \
	./internal/obs/ \
	./internal/gridftp/ \
	./internal/transfer/ \
	./internal/netsim/ \
	./internal/usagestats/

echo "OK"
