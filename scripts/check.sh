#!/bin/sh
# check.sh — the pre-commit gate: gofmt, build, vet, full test suite, and
# the race detector on the concurrency-heavy packages (the observability
# registry/tracer/eventlog, the continuous profiler, the admin HTTP
# plane, the GridFTP engine with its marker emitters, the hosted
# transfer service, and the network simulator).
#
# Usage: ./scripts/check.sh [extra go-test args]
set -eu
cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test "$@" ./...

echo "==> go test -race (obs tree, collector, tenant, streamstats, profile, fleet, admin, gridftp, xio, transfer, netsim, usagestats)"
go test -race "$@" \
	./internal/obs/... \
	./internal/obs/collector/ \
	./internal/obs/tsdb/ \
	./internal/obs/tenant/ \
	./internal/obs/streamstats/ \
	./internal/obs/profile/ \
	./internal/obs/fleet/ \
	./internal/admin/ \
	./internal/gridftp/ \
	./internal/xio/ \
	./internal/transfer/ \
	./internal/netsim/ \
	./internal/usagestats/

echo "OK"
