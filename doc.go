// Package instant is the root of a from-scratch Go reproduction of
// "Instant GridFTP" (Kettimuthu et al., IPPS/HPGC 2012): Globus Connect
// Multi User and every subsystem it depends on — the GridFTP protocol,
// the GSI security stack with RFC 3820-style proxy certificates, the
// MyProxy Online CA over PAM, the DCSC protocol extension, a Globus
// Online-style hosted transfer service, and the SCP/FTP/GridFTP-Lite
// baselines — all running over an in-process network simulator.
//
// Start with README.md for the tour, DESIGN.md for the system inventory
// and the per-experiment index (E1-E13 plus ablations), and EXPERIMENTS.md
// for the paper-vs-measured record. The packages live under internal/;
// runnable entry points under cmd/ and examples/. This file exists so the
// module root documents itself; the root package otherwise holds only the
// benchmark harness (bench_test.go), which regenerates every experiment's
// measurements via `go test -bench=.`.
package instant
